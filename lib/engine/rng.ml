type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = Int64.of_int seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

(* 53 uniformly random mantissa bits in [0, 1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound =
  assert (bound > 0.0);
  unit_float t *. bound

let int t bound =
  assert (bound > 0);
  (* Modulo bias is negligible for the small bounds used in simulation. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1)
                  (Int64.of_int bound))

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = unit_float t in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let uniform_in t ~lo ~hi =
  assert (hi >= lo);
  lo +. (unit_float t *. (hi -. lo))

let gaussian t =
  (* Box–Muller, pair-discarding form: both uniforms are consumed on every
     call so the stream position is a pure function of the call count (no
     cached spare that would make interleaved consumers order-dependent). *)
  let u1 =
    let u = unit_float t in
    if u <= 0.0 then 1e-300 else u
  in
  let u2 = unit_float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
