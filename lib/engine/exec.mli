(** Parallel trial executor and on-disk result cache.

    Simulation runs are pure functions of their config (each run owns its
    [Sim.t] and derives all randomness from the config's seed), so batches
    of independent runs parallelise across domains without changing any
    result, and results can be cached on disk under a digest of the
    config. *)

val domain_count : unit -> int
(** [Domain.recommended_domain_count ()]: the default worker count for
    CPU-bound batches. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] evaluates [f] on every element using up to [jobs]
    domains (default 1, i.e. sequential) and returns the results in input
    order. [f] must be safe to run concurrently with itself — in this
    codebase, any closure over a pure simulation config qualifies. If a job
    raises, the exception is re-raised after all workers finish. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists. *)

type counters = {
  jobs_executed : int;  (** Jobs evaluated by {!map} since process start. *)
  cache_hits : int;  (** {!Cache.find} calls answered from disk. *)
  cache_misses : int;  (** {!Cache.find} calls that fell through. *)
  memo_evictions : int;
      (** Entries displaced from capped in-memory memo layers
          ({!note_memo_eviction} calls — see [Runs.run_specs_memo]). *)
}

val counters : unit -> counters
(** Process-wide monotonic counters; take a snapshot before and after a
    batch and subtract to report per-batch work (as [bin/repro] does). *)

val note_memo_eviction : unit -> unit
(** Count one memo eviction (atomic; callable from worker domains). *)

(** Content-addressed result store: values are marshalled under the MD5 of
    a caller-chosen key string (for experiments, the marshalled config).

    Reads are typed by the caller ([find] is as unsafe as [Marshal]): only
    read a key with the type it was stored at. Corrupted, truncated, or
    foreign files are treated as misses, never errors. Concurrent writers
    are safe: files are written to a temp name and renamed into place. *)
module Cache : sig
  type t

  val create : string -> t
  (** Use (and create if needed, including parents) the given directory. *)

  val dir : t -> string

  val find : t -> key:string -> 'a option
  (** The value stored under [key], or [None] (counted as a miss) when
      absent or unreadable. *)

  val store : t -> key:string -> 'a -> unit
  (** Persist [value] under [key], atomically replacing any previous
      entry. The value must contain no closures. *)
end
