type t = {
  now : float array;
      (* Singleton cell: [now] is stored on every event fire, and a float
         array write does not box, unlike a mutable float field of a mixed
         record. *)
  queue : Event_queue.t;
  root_rng : Rng.t;
  mutable lanes : Lane.view array;
  mutable n_lanes : int;
  (* Merge-loop scratch, hoisted here so the loop allocates nothing.
     [best_time] is a singleton float array: float-array writes don't
     box, unlike writes to a mutable float field of a mixed record. *)
  best_time : float array;
  mutable best_seq : int;
  mutable best_lane : int;
}

type handle = Event_queue.handle
type 'a lane = 'a Lane.t

let create ?(seed = 42) () =
  {
    now = [| 0.0 |];
    queue = Event_queue.create ();
    root_rng = Rng.create seed;
    lanes = [||];
    n_lanes = 0;
    best_time = [| infinity |];
    best_seq = max_int;
    best_lane = -1;
  }

let now t = t.now.(0)
let rng t = t.root_rng

let schedule_at t ~time f =
  if not (time >= t.now.(0)) then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time
         t.now.(0));
  Event_queue.add t.queue ~time f

let schedule t ~delay f =
  if not (delay >= 0.0) then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.now.(0) +. delay) f

let cancel t h = Event_queue.cancel t.queue h
let null_handle = Event_queue.none
let is_null = Event_queue.is_none

let lane t ~dummy ~deliver =
  let l = Lane.create ~dummy ~deliver in
  let v = Lane.view l in
  if t.n_lanes = Array.length t.lanes then begin
    let cap = max 4 (2 * Array.length t.lanes) in
    let lanes = Array.make cap v in
    Array.blit t.lanes 0 lanes 0 t.n_lanes;
    t.lanes <- lanes
  end;
  t.lanes.(t.n_lanes) <- v;
  t.n_lanes <- t.n_lanes + 1;
  l

let schedule_packet t l ~delay x =
  if not (delay >= 0.0) then
    invalid_arg "Sim.schedule_packet: negative delay";
  let time = t.now.(0) +. delay in
  if Lane.can_accept l ~time then
    Lane.push l ~time ~seq:(Event_queue.take_seq t.queue) x
  else
    (* Out-of-FIFO delivery (e.g. a delay function that varies per
       packet): fall back to the heap. Ordering stays global (time, seq)
       either way; only the allocation profile differs. *)
    ignore
      (Event_queue.add t.queue ~time
         ((fun () -> Lane.apply l x)
         [@simlint.alloc_ok
           "heap fallback for out-of-FIFO delivery; the lane fast path \
            builds no closure"]))

(* One N-way merge step: find the earliest (time, seq) among the heap head
   and every lane head, leaving the choice in [best_time]/[best_seq]/
   [best_lane] ([best_lane] = -1 for the heap). *)
let select t =
  let q = t.queue in
  Event_queue.settle q;
  if Event_queue.heap_length q = 0 then begin
    t.best_time.(0) <- infinity;
    t.best_seq <- max_int
  end
  else begin
    t.best_time.(0) <- Event_queue.head_time_unsafe q;
    t.best_seq <- Event_queue.head_seq_unsafe q
  end;
  t.best_lane <- -1;
  for i = 0 to t.n_lanes - 1 do
    let v = t.lanes.(i) in
    let vt = v.Lane.head_time.(0) in
    if
      vt < t.best_time.(0)
      || (vt = t.best_time.(0) && v.Lane.head_seq < t.best_seq)
    then begin
      t.best_time.(0) <- vt;
      t.best_seq <- v.Lane.head_seq;
      t.best_lane <- i
    end
  done

let run ?until t =
  let limit = match until with Some l -> l | None -> infinity in
  let continue = ref true in
  while !continue do
    select t;
    let time = t.best_time.(0) in
    if time = infinity then continue := false
    else if time > limit then begin
      t.now.(0) <- limit;
      continue := false
    end
    else begin
      t.now.(0) <- time;
      if t.best_lane >= 0 then t.lanes.(t.best_lane).Lane.fire ()
      else (Event_queue.take_head t.queue) ()
    end
  done;
  match until with
  | Some limit when t.now.(0) < limit -> t.now.(0) <- limit
  | Some _ | None -> ()

let pending_events t =
  let n = ref (Event_queue.size t.queue) in
  for i = 0 to t.n_lanes - 1 do
    n := !n + t.lanes.(i).Lane.queued
  done;
  !n
