type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = if t.n = 0 then nan else t.min
let max t = if t.n = 0 then nan else t.max

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let percentile xs ~p =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let confidence_interval95 xs =
  match xs with
  | [] -> invalid_arg "Stats.confidence_interval95: empty list"
  | [ x ] -> (x, x)
  | _ ->
    let t = of_list xs in
    let half = 1.96 *. stddev t /. sqrt (float_of_int (count t)) in
    (mean t -. half, mean t +. half)

let approx_eq ?(eps = 0.0) a b = Float.abs (a -. b) <= eps
let is_zero ?eps x = approx_eq ?eps x 0.0

let relative_error ~predicted ~actual =
  if is_zero actual then if is_zero predicted then 0.0 else infinity
  else Float.abs (predicted -. actual) /. Float.abs actual
