(** A pooled, struct-of-arrays binary heap of timestamped events.

    Events with equal timestamps fire in insertion order — the (time, seq)
    tie-break — which makes simulation runs fully deterministic. The heap
    stores immediates only (time/seq/slot triples); callbacks live in a
    recycled slot pool, so steady-state add/pop cycles allocate nothing.

    Cancellation is O(1) and lazy, but bounded: the cancelled count is
    tracked incrementally (so {!size} is O(1)) and the heap compacts in
    place whenever cancelled entries outnumber live ones. *)

type t

type handle
(** Identifies a scheduled event so that it can be cancelled. Handles are
    immediate ints (no allocation) and become inert once the event fires
    or is cancelled; they are only meaningful to the queue that issued
    them. *)

val create : unit -> t

val none : handle
(** A handle that refers to no event; {!cancel} on it is a no-op. *)

val is_none : handle -> bool

val add : t -> time:float -> (unit -> unit) -> handle
(** [add t ~time f] schedules [f] to fire at [time]. [time] must not be
    NaN. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_cancelled : t -> handle -> bool
(** True once the event is cancelled or has already fired (i.e. it is no
    longer pending). *)

val pop : t -> (float * (unit -> unit)) option
(** Remove and return the earliest live event, or [None] if empty. *)

val peek_time : t -> float option
(** Timestamp of the earliest live event without removing it. *)

val size : t -> int
(** Number of live (non-cancelled) events currently queued. O(1). *)

val is_empty : t -> bool

(** {2 Raw accessors}

    Allocation-free primitives for {!Sim}'s merge loop. Callers must
    {!settle} first, check {!heap_length}, and only then read the head. *)

val settle : t -> unit
(** Drop cancelled entries from the top of the heap so that the head entry
    (if any) is live. *)

val heap_length : t -> int
(** Entries physically in the heap; after {!settle} a non-zero value means
    the head is a live event. *)

val head_time_unsafe : t -> float
(** Time of the head entry. Only valid after [settle] when
    [heap_length t > 0]. *)

val head_seq_unsafe : t -> int
(** Seq of the head entry, under the same conditions. *)

val take_head : t -> unit -> unit
(** Remove the head entry and return its callback, under the same
    conditions. *)

val take_seq : t -> int
(** Allocate the next global sequence number, for events kept outside the
    heap (see {!Lane}) that must still obey the (time, seq) tie-break. *)
