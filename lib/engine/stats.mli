(** Streaming and batch summary statistics (Welford accumulator, percentiles,
    normal-approximation confidence intervals). *)

type t
(** A streaming accumulator. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance; [nan] when fewer than two samples. *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val of_list : float list -> t

val percentile : float list -> p:float -> float
(** Linear-interpolation percentile, [p] in [\[0, 100\]]. Raises
    [Invalid_argument] on an empty list or out-of-range [p]. *)

val confidence_interval95 : float list -> float * float
(** Normal-approximation 95% CI of the mean: [(lo, hi)]. A singleton list
    yields a degenerate interval at its value. *)

val relative_error : predicted:float -> actual:float -> float
(** |predicted - actual| / |actual|; [infinity] when [actual = 0] and
    [predicted <> 0], [0] when both are zero. *)

(** {1 Epsilon comparisons}

    Exact [=] on floats is almost always a bug (and flagged by simlint rule
    R4); these spell out the intended tolerance. The default [eps] of [0.0]
    means "bitwise-equal is fine here, and I mean it". *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq ?eps a b] is [|a - b| <= eps]. *)

val is_zero : ?eps:float -> float -> bool
(** [is_zero ?eps x] is [approx_eq ?eps x 0.0]. *)

