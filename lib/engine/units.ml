type time
type volume
type rate
type 'dim qty = float

type seconds = time qty
type byte_count = volume qty
type rate_bps = rate qty

let mss = 1500
let bits_per_byte = 8.0

let seconds x = x
let ms x = x /. 1e3
let bytes x = x
let bytes_of_int = float_of_int
let bps x = x
let mbps x = x *. 1e6

let sec_to_ms x = x *. 1e3
let bps_to_mbps x = x /. 1e6
let bytes_to_int = int_of_float

let scale k x = k *. x
let add a b = a +. b
let sub a b = a -. b
let ratio a b = a /. b

let bytes_per_sec rate = rate /. bits_per_byte
let bits_per_sec_of_bytes ~bytes_per_sec = bytes_per_sec *. bits_per_byte
let bdp_bytes ~rate_bps ~rtt = rate_bps *. rtt /. bits_per_byte
let bdp_packets ~rate_bps ~rtt = bdp_bytes ~rate_bps ~rtt /. float_of_int mss

let transmission_time ~rate_bps ~bytes =
  float_of_int bytes *. bits_per_byte /. rate_bps

module Raw = struct
  let to_float x = x
  let of_float x = x
end
