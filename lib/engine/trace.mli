(** Structured simulation telemetry: a low-overhead event stream.

    Components (the sender, the bottleneck queue, flow tracers) emit typed
    {!event}s into a {!t} hub, each stamped with the simulated time and a
    flow id. A hub retains the most recent events in a bounded ring buffer
    (for tests and post-mortems) and fans every event out to any number of
    subscribed sinks (in-memory consumers, or the {!jsonl_sink}/{!csv_sink}
    file writers used by [repro run --trace]).

    Overhead contract: instrumented components hold a [t option] and guard
    every emission site with a [match] on it, so a run with no trace
    attached pays one branch per would-be event — no allocation, no
    formatting. Attaching a hub never changes simulation results: sinks
    only observe; all randomness and scheduling stay with the simulation
    proper. *)

type event =
  | Send of { seq : int; size : int; retransmit : bool }
      (** A segment handed to the network. *)
  | Ack of {
      seq : int;
      rtt_sample : float;  (** Seconds; as measured by this ACK. *)
      delivered_bytes : float;  (** Sender cumulative after this ACK. *)
      inflight_bytes : int;
    }
  | Seg_lost of { seq : int; via_timeout : bool }
      (** A transmission declared lost (RACK reap or RTO sweep); one event
          per segment counted in [Sender.lost_segments]. *)
  | Drop of { seq : int; size : int; early : bool; queue_bytes : int }
      (** A packet dropped at the bottleneck ([early] = RED's choice);
          [queue_bytes] is the occupancy that rejected it. The record's
          flow field names the owning flow. *)
  | Rto_fire of { interval : float; backoff : int; lost_segments : int }
      (** The retransmission timer expired after [interval] seconds at
          exponential-backoff stage [backoff] (0 = first firing), declaring
          [lost_segments] segments lost. *)
  | Recovery_enter of { via_timeout : bool; lost_bytes : int }
  | Recovery_exit
  | Cc_state_change of { from_state : string; to_state : string }
      (** The CCA's [state ()] string changed (e.g. BBR Startup→Drain). *)
  | Cc_sample of {
      cwnd_bytes : float;
      inflight_bytes : int;
      pacing_rate : float option;
      delivered_bytes : float;
      cc_state : string;
    }  (** A periodic congestion-state sample (emitted by [Flow_trace]). *)
  | Queue_sample of { queue_bytes : int; queue_packets : int }
      (** Bottleneck occupancy observed at a packet arrival. *)
  | Flow_start of { size_limit_bytes : int }
      (** The flow was activated (its sender scheduled its first send).
          [size_limit_bytes] is -1 for long-lived backlogged flows. *)
  | Flow_complete of { fct : float; size_bytes : int }
      (** A size-limited flow acknowledged its last byte; [fct] is the
          flow-completion time in seconds since activation. *)

type record = { time : float; flow : int; event : event }
(** One timestamped occurrence. [flow] is {!link_scope} for link-level
    events ({!Queue_sample}); {!Drop} carries the owning flow. *)

val link_scope : int
(** The pseudo flow id (-1) stamped on events that belong to the shared
    link rather than any one flow. *)

type t
(** An event hub: bounded ring of recent records + subscriber list. *)

val create : ?ring_capacity:int -> unit -> t
(** [ring_capacity] (default 65536, must be positive) bounds the records
    retained in memory; older records are overwritten, never blocking the
    simulation. Sinks see every event regardless of ring size. *)

val emit : t -> time:float -> flow:int -> event -> unit

val subscribe : t -> (record -> unit) -> unit
(** Sinks run synchronously at emission, in subscription order. *)

val subscribe_sink :
  t -> on_record:(record -> unit) -> on_close:(unit -> unit) -> unit
(** Like {!subscribe}, but with an end-of-stream callback: [on_close] runs
    when the hub is {!close}d, letting stateful sinks (file writers, the
    invariant auditor) flush buffers or run whole-stream checks. *)

val close : t -> unit
(** Declare the stream complete: every sink's [on_close] runs once, in
    subscription order. Idempotent — only the first call fires the
    callbacks. Closing does not disable {!emit}; it is a signal to sinks,
    not a lifecycle gate on the hub. *)

val closed : t -> bool

val records : t -> record list
(** The retained (up to [ring_capacity] most recent) records, in emission
    order. *)

val emitted : t -> int
(** Total records ever emitted into this hub. *)

val overwritten : t -> int
(** Records evicted from the ring ([emitted - overwritten] are retained,
    once the ring has wrapped). *)

(** {1 Serialization sinks}

    Both writers are deterministic byte-for-byte: fixed field order, fixed
    float format — a seeded run traces identically across invocations and
    worker counts. *)

val event_name : event -> string

val to_jsonl : record -> string
(** One JSON object, no trailing newline. *)

val csv_header : string

val to_csv_row : record -> string
(** [time,flow,event,detail] where [detail] packs the event's fields as
    [k=v] pairs joined with [';']. *)

val jsonl_sink : out_channel -> record -> unit
val csv_sink : out_channel -> record -> unit
(** [csv_sink] does not write {!csv_header}; the caller does, once. *)

(** {1 Rollups} *)

module Metrics : sig
  (** A streaming rollup of an event stream: counters, rates, CC-state
      occupancy and queue-delay quantiles. Subscribe {!observe} to a hub
      (or fold {!of_records} over retained records) and read {!summary}. *)

  type t

  val create : ?rate_bps:float -> unit -> t
  (** [rate_bps], when given, converts {!Queue_sample} occupancies into
      queue delays (seconds) for the quantile rollup. *)

  val observe : t -> record -> unit

  type summary = {
    events : int;
    sends : int;
    retransmits : int;
    acks : int;
    seg_losts : int;
    drops : int;
    rto_fires : int;
    recovery_entries : int;
    retransmit_rate : float;  (** retransmits / sends; [nan] if no sends. *)
    drop_rate : float;  (** drops / sends; [nan] if no sends. *)
    state_occupancy : (string * float) list;
        (** Fraction of {!Cc_sample} events per CCA state, sorted by
            descending share (ties by name) — the event-stream equivalent
            of [Flow_trace.state_occupancy]. *)
    queue_delay_quantiles : (float * float) list;
        (** [(percentile, seconds)] for p50/p90/p99 over per-arrival queue
            delays; empty without [rate_bps] or queue samples. *)
    flow_starts : int;  (** {!Flow_start} events seen. *)
    flow_completes : int;  (** {!Flow_complete} events seen. *)
    fct_quantiles : (float * float) list;
        (** [(percentile, seconds)] for p50/p95/p99 over flow-completion
            times; empty when no flow completed. *)
  }

  val summary : t -> summary

  val of_records : ?rate_bps:float -> record list -> summary

  val summary_line : summary -> string
  (** A one-line, fixed-order [key=value] rendering (the per-entry line
      [repro run --trace] prints and the [.metrics] sidecar format). *)
end
