(** The congestion-control interface shared by every algorithm.

    Internal units: bytes for windows and volumes, bytes/second for rates,
    seconds for time. The transport layer ({!Tcpflow.Sender}) produces
    {!ack_info}/{!loss_info} records; the CCA updates its state and exposes a
    congestion window and an optional pacing rate.

    A CCA is represented as a record of closures ({!t}) so that user code —
    including the [custom_cca] example — can implement new algorithms without
    functors, and so that heterogeneous flows can share one experiment. *)

(** The float payload of an ACK, split into its own all-float record (flat,
    unboxed storage) so the transport can reuse one mutable [ack_info] as a
    per-ACK scratch without allocating. The record is only valid for the
    duration of the [on_ack] call — CCAs must copy values out, never retain
    the record. *)
type ack_floats = {
  mutable now : float;  (** Virtual time of the ACK's arrival at the sender. *)
  mutable rtt_sample : float;  (** RTT measured by this ACK (seconds). *)
  mutable delivered : float;  (** Sender's cumulative delivered bytes. *)
  mutable delivery_rate : float;
      (** Delivery-rate sample in bytes/s (BBR-style estimator); [0.] when no
          valid sample exists. *)
}

type ack_info = {
  f : ack_floats;  (** Time, RTT and delivery-rate payload. *)
  mutable acked_bytes : int;  (** Bytes newly acknowledged. *)
  mutable rate_app_limited : bool;
      (** The delivery-rate sample was taken while application-limited and
          therefore only a lower bound. *)
  mutable inflight_bytes : int;  (** Bytes in flight after this ACK. *)
  mutable round : int;  (** Count of completed delivery rounds (RTTs). *)
  mutable round_start : bool;  (** True for the first ACK of a new round. *)
}

type loss_info = {
  now : float;
  lost_bytes : int;  (** Bytes declared lost by this event. *)
  inflight_bytes : int;  (** Bytes in flight after removing the lost data. *)
  via_timeout : bool;  (** True for RTO-detected loss (vs fast retransmit). *)
}

type t = {
  name : string;
  on_ack : ack_info -> unit;
  on_loss : loss_info -> unit;
  on_send : now:float -> inflight_bytes:int -> unit;
      (** Called whenever the sender transmits, letting rate-based CCAs track
          sending epochs. Most algorithms ignore it. *)
  cwnd_bytes : unit -> float;
      (** Current congestion window. The sender never lets in-flight data
          exceed this. *)
  pacing_rate : unit -> float;
      (** Pacing rate in bytes/s; [nan] when the algorithm is ACK-clocked
          (no pacing). Returned unboxed-sentinel style rather than as an
          option so the per-send hot path allocates nothing. *)
  state : unit -> string;
      (** Human-readable internal state (e.g. ["ProbeBW"]) for traces. *)
}

val min_cwnd_bytes : mss:int -> float
(** Floor applied by convention in all bundled CCAs: 2 MSS. *)
