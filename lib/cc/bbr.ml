type params = {
  bw_window_rounds : int;
  rtprop_window : float;
  probe_rtt_duration : float;
  probe_bw_cwnd_gain : float;
  high_gain : float;
}

let default_params =
  {
    bw_window_rounds = 10;
    rtprop_window = 10.0;
    probe_rtt_duration = 0.2;
    probe_bw_cwnd_gain = 2.0;
    high_gain = 2.0 /. log 2.0;
  }

type mode = Startup | Drain | ProbeBW | ProbeRTT

let gain_cycle = [| 1.25; 0.75; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]

type t = {
  params : params;
  mss : float;
  rng : Sim_engine.Rng.t;
  btlbw : Windowed_filter.Max_rounds.t;  (* bytes/s *)
  mutable rtprop : float;  (* seconds; infinity before first sample *)
  mutable rtprop_stamp : float;
  mutable mode : mode;
  mutable pacing_gain : float;
  mutable cwnd_gain : float;
  mutable full_bw : float;
  mutable full_bw_count : int;
  mutable filled_pipe : bool;
  mutable cycle_index : int;
  mutable cycle_stamp : float;
  mutable probe_rtt_done_stamp : float;  (* nan until in-flight reached 4 MSS *)
}

let bdp t =
  let bw = Windowed_filter.Max_rounds.get t.btlbw in
  if Sim_engine.Stats.is_zero bw || t.rtprop = infinity then 0.0
  else bw *. t.rtprop

let min_cwnd t = 4.0 *. t.mss

let cwnd_bytes t =
  match t.mode with
  | ProbeRTT -> min_cwnd t
  | Startup | Drain | ProbeBW ->
    let bdp = bdp t in
    if Sim_engine.Stats.is_zero bdp then 10.0 *. t.mss
    else Float.max (t.cwnd_gain *. bdp) (min_cwnd t)

let pacing_rate t =
  let bw = Windowed_filter.Max_rounds.get t.btlbw in
  if Sim_engine.Stats.is_zero bw then nan else t.pacing_gain *. bw

let enter_probe_bw t ~now =
  t.mode <- ProbeBW;
  t.cwnd_gain <- t.params.probe_bw_cwnd_gain;
  (* Random initial phase, excluding the 0.75 drain phase (index 1). *)
  let idx = Sim_engine.Rng.int t.rng (Array.length gain_cycle) in
  t.cycle_index <- (if idx = 1 then 2 else idx);
  t.pacing_gain <- gain_cycle.(t.cycle_index);
  t.cycle_stamp <- now

let check_full_pipe t =
  if not t.filled_pipe then begin
    let bw = Windowed_filter.Max_rounds.get t.btlbw in
    if bw >= t.full_bw *. 1.25 then begin
      t.full_bw <- bw;
      t.full_bw_count <- 0
    end
    else begin
      t.full_bw_count <- t.full_bw_count + 1;
      if t.full_bw_count >= 3 then t.filled_pipe <- true
    end
  end

let advance_cycle t (ack : Cc_types.ack_info) =
  let elapsed = ack.f.now -. t.cycle_stamp in
  let inflight = float_of_int ack.inflight_bytes in
  let should_advance =
    if Sim_engine.Stats.approx_eq t.pacing_gain 1.0 then elapsed > t.rtprop
    else if t.pacing_gain > 1.0 then
      (* Stay in the up-probe until we have actually filled the pipe to the
         probing target (or a full RTprop elapsed). *)
      elapsed > t.rtprop && inflight >= t.pacing_gain *. bdp t
    else
      (* Leave the 0.75 drain phase as soon as the excess is drained. *)
      elapsed > t.rtprop || inflight <= bdp t
  in
  if should_advance then begin
    t.cycle_index <- (t.cycle_index + 1) mod Array.length gain_cycle;
    t.pacing_gain <- gain_cycle.(t.cycle_index);
    t.cycle_stamp <- ack.f.now
  end

let enter_probe_rtt t =
  t.mode <- ProbeRTT;
  t.probe_rtt_done_stamp <- nan

let exit_probe_rtt t ~now =
  t.rtprop_stamp <- now;
  if t.filled_pipe then enter_probe_bw t ~now
  else begin
    t.mode <- Startup;
    t.pacing_gain <- t.params.high_gain;
    t.cwnd_gain <- t.params.high_gain
  end

(* The Linux rule: a smaller sample always wins; an expired estimate adopts
   the next sample unconditionally (and, below, triggers ProbeRTT). *)
let update_rtprop t (ack : Cc_types.ack_info) ~expired =
  if ack.f.rtt_sample < t.rtprop || expired then begin
    t.rtprop <- ack.f.rtt_sample;
    t.rtprop_stamp <- ack.f.now
  end

let handle_probe_rtt t (ack : Cc_types.ack_info) =
  if Float.is_nan t.probe_rtt_done_stamp then begin
    if float_of_int ack.inflight_bytes <= min_cwnd t then
      t.probe_rtt_done_stamp <- ack.f.now +. t.params.probe_rtt_duration
  end
  else if ack.f.now >= t.probe_rtt_done_stamp then exit_probe_rtt t ~now:ack.f.now

let on_ack t (ack : Cc_types.ack_info) =
  (* Bandwidth filter: app-limited samples only raise the estimate. *)
  if
    ack.f.delivery_rate > 0.0
    && ((not ack.rate_app_limited)
        || ack.f.delivery_rate > Windowed_filter.Max_rounds.get t.btlbw)
  then
    Windowed_filter.Max_rounds.update t.btlbw ~round:ack.round
      ack.f.delivery_rate;
  let rtprop_expired =
    t.rtprop < infinity
    && ack.f.now -. t.rtprop_stamp > t.params.rtprop_window
  in
  update_rtprop t ack ~expired:rtprop_expired;
  (match t.mode with
  | Startup ->
    if ack.round_start then check_full_pipe t;
    if t.filled_pipe then begin
      t.mode <- Drain;
      t.pacing_gain <- 1.0 /. t.params.high_gain
    end
  | Drain ->
    if float_of_int ack.inflight_bytes <= bdp t then enter_probe_bw t ~now:ack.f.now
  | ProbeBW -> advance_cycle t ack
  | ProbeRTT -> ());
  (* ProbeRTT entry check applies in every mode except ProbeRTT itself. *)
  (match t.mode with
  | ProbeRTT -> ()
  | Startup | Drain | ProbeBW -> if rtprop_expired then enter_probe_rtt t);
  if t.mode = ProbeRTT then handle_probe_rtt t ack

let make ?(params = default_params) ~mss ~rng () =
  let t =
    {
      params;
      mss = float_of_int mss;
      rng;
      btlbw = Windowed_filter.Max_rounds.create ~window:params.bw_window_rounds;
      rtprop = infinity;
      rtprop_stamp = 0.0;
      mode = Startup;
      pacing_gain = params.high_gain;
      cwnd_gain = params.high_gain;
      full_bw = 0.0;
      full_bw_count = 0;
      filled_pipe = false;
      cycle_index = 0;
      cycle_stamp = 0.0;
      probe_rtt_done_stamp = nan;
    }
  in
  {
    Cc_types.name = "bbr";
    on_ack = on_ack t;
    (* BBRv1 is loss-agnostic (paper §2.3, assumption 4). *)
    on_loss = (fun (_ : Cc_types.loss_info) -> ());
    on_send = (fun ~now:_ ~inflight_bytes:_ -> ());
    cwnd_bytes = (fun () -> cwnd_bytes t);
    pacing_rate = (fun () -> pacing_rate t);
    state =
      (fun () ->
        match t.mode with
        | Startup -> "Startup"
        | Drain -> "Drain"
        | ProbeBW -> "ProbeBW"
        | ProbeRTT -> "ProbeRTT");
  }

let mode_of (cc : Cc_types.t) = cc.state ()
