type constructor = mss:int -> rng:Sim_engine.Rng.t -> Cc_types.t

let table : (string, constructor) Hashtbl.t = Hashtbl.create 16

let register name ctor = Hashtbl.replace table name ctor
let find name = Hashtbl.find_opt table name

let[@simlint.taint_ok "fold output is sorted before use: order-free"] names ()
    =
  (* Hash order is harmless: the accumulated names are sorted before use. *)
  Hashtbl.fold (fun name _ acc -> name :: acc) table [] (* simlint: allow R1 *)
  |> List.sort compare

let create name ~mss ~rng =
  match find name with
  | Some ctor -> ctor ~mss ~rng
  | None ->
    invalid_arg
      (Printf.sprintf "Registry.create: unknown CCA %S (known: %s)" name
         (String.concat ", " (names ())))

let () =
  register "reno" (fun ~mss ~rng:_ -> Reno.make ~mss ());
  register "cubic" (fun ~mss ~rng:_ -> Cubic.make ~mss ());
  register "bbr" (fun ~mss ~rng -> Bbr.make ~mss ~rng ());
  register "bbr2" (fun ~mss ~rng -> Bbr2.make ~mss ~rng ());
  register "copa" (fun ~mss ~rng:_ -> Copa.make ~mss ());
  register "vegas" (fun ~mss ~rng:_ -> Vegas.make ~mss ());
  register "vivace" (fun ~mss ~rng -> Vivace.make ~mss ~rng ())
