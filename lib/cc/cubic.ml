type params = {
  c : float;
  beta : float;
  tcp_friendly : bool;
  initial_cwnd_mss : int;
}

let default_params =
  { c = 0.4; beta = 0.3; tcp_friendly = true; initial_cwnd_mss = 10 }

let multiplicative_decrease p = 1.0 -. p.beta

type t = {
  params : params;
  mss : float;
  mutable cwnd : float;  (* bytes *)
  mutable ssthresh : float;  (* bytes *)
  mutable w_max : float;  (* MSS units, as in the kernel *)
  mutable k : float;  (* seconds *)
  mutable epoch_start : float;  (* time of last loss; nan before any loss *)
  mutable srtt : float;  (* smoothed RTT for target look-ahead *)
  (* TCP-friendly region state. *)
  mutable w_est : float;  (* MSS units *)
  mutable acked_since_loss : float;  (* bytes *)
}

let cwnd_mss t = t.cwnd /. t.mss

(* Eq. (1) of the paper: the cubic window at [elapsed] seconds after the last
   back-off, in MSS units. *)
let cubic_window t ~elapsed =
  (t.params.c *. ((elapsed -. t.k) ** 3.0)) +. t.w_max

let on_ack t (ack : Cc_types.ack_info) =
  let acked = float_of_int ack.acked_bytes in
  t.srtt <-
    (if Float.is_nan t.srtt then ack.f.rtt_sample
     else (0.875 *. t.srtt) +. (0.125 *. ack.f.rtt_sample));
  if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. acked
  else begin
    if Float.is_nan t.epoch_start then begin
      (* First congestion-avoidance ACK without a prior loss: anchor the
         cubic epoch at the current window. *)
      t.epoch_start <- ack.f.now;
      t.w_max <- cwnd_mss t;
      t.k <- 0.0;
      t.w_est <- cwnd_mss t
    end;
    let elapsed = ack.f.now -. t.epoch_start +. t.srtt in
    let target = cubic_window t ~elapsed in
    let w = cwnd_mss t in
    let increment_mss =
      if target > w then (target -. w) /. w *. (acked /. t.mss)
      else 0.01 /. w *. (acked /. t.mss)
      (* minimal growth when at/above target, as in the kernel's max_cnt *)
    in
    t.cwnd <- t.cwnd +. (increment_mss *. t.mss);
    if t.params.tcp_friendly then begin
      (* Reno-equivalent window estimate (RFC 8312 §4.2). *)
      t.acked_since_loss <- t.acked_since_loss +. acked;
      let alpha =
        3.0 *. t.params.beta /. (2.0 -. t.params.beta)
      in
      t.w_est <-
        t.w_est +. (alpha *. (acked /. t.mss) /. Float.max 1.0 t.w_est);
      if t.w_est > cwnd_mss t then t.cwnd <- t.w_est *. t.mss
    end
  end

let on_loss t (loss : Cc_types.loss_info) =
  let w = cwnd_mss t in
  t.epoch_start <- loss.now;
  t.w_max <- w;
  t.k <- Float.cbrt (t.w_max *. t.params.beta /. t.params.c);
  let decreased = t.cwnd *. multiplicative_decrease t.params in
  let floor_ = Cc_types.min_cwnd_bytes ~mss:(int_of_float t.mss) in
  t.cwnd <- Float.max decreased floor_;
  t.ssthresh <- t.cwnd;
  t.w_est <- cwnd_mss t;
  t.acked_since_loss <- 0.0;
  if loss.via_timeout then t.cwnd <- floor_

let make ?(params = default_params) ~mss () =
  let t =
    {
      params;
      mss = float_of_int mss;
      cwnd = float_of_int (params.initial_cwnd_mss * mss);
      ssthresh = infinity;
      w_max = 0.0;
      k = 0.0;
      epoch_start = nan;
      srtt = nan;
      w_est = 0.0;
      acked_since_loss = 0.0;
    }
  in
  {
    Cc_types.name = "cubic";
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_send = (fun ~now:_ ~inflight_bytes:_ -> ());
    cwnd_bytes = (fun () -> Float.max t.cwnd (Cc_types.min_cwnd_bytes ~mss));
    pacing_rate = (fun () -> nan);
    state =
      (fun () -> if t.cwnd < t.ssthresh then "SlowStart" else "CongAvoid");
  }
