type t = {
  mss : float;
  mutable cwnd : float;  (* bytes *)
  mutable ssthresh : float;  (* bytes *)
}

let on_ack t (ack : Cc_types.ack_info) =
  let acked = float_of_int ack.acked_bytes in
  if t.cwnd < t.ssthresh then
    (* Slow start: one MSS per acked MSS. *)
    t.cwnd <- t.cwnd +. acked
  else
    (* Congestion avoidance: one MSS per window. *)
    t.cwnd <- t.cwnd +. (t.mss *. acked /. t.cwnd)

let on_loss t (loss : Cc_types.loss_info) =
  let floor_ = Cc_types.min_cwnd_bytes ~mss:(int_of_float t.mss) in
  if loss.via_timeout then begin
    t.ssthresh <- Float.max (t.cwnd /. 2.0) floor_;
    t.cwnd <- t.mss
  end
  else begin
    t.ssthresh <- Float.max (t.cwnd /. 2.0) floor_;
    t.cwnd <- t.ssthresh
  end

let make ?(initial_cwnd_mss = 10) ~mss () =
  let t =
    {
      mss = float_of_int mss;
      cwnd = float_of_int (initial_cwnd_mss * mss);
      ssthresh = infinity;
    }
  in
  {
    Cc_types.name = "reno";
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_send = (fun ~now:_ ~inflight_bytes:_ -> ());
    cwnd_bytes = (fun () -> Float.max t.cwnd (Cc_types.min_cwnd_bytes ~mss));
    pacing_rate = (fun () -> nan);
    state = (fun () -> if t.cwnd < t.ssthresh then "SlowStart" else "CongAvoid");
  }
