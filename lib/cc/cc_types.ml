(* The per-ACK floats live in their own all-float record so the transport
   can refill one mutable scratch [ack_info] per ACK without allocating:
   all-float records store flat, whereas mutable float fields of the mixed
   record would box on every store. *)
type ack_floats = {
  mutable now : float;
  mutable rtt_sample : float;
  mutable delivered : float;
  mutable delivery_rate : float;
}

type ack_info = {
  f : ack_floats;
  mutable acked_bytes : int;
  mutable rate_app_limited : bool;
  mutable inflight_bytes : int;
  mutable round : int;
  mutable round_start : bool;
}

type loss_info = {
  now : float;
  lost_bytes : int;
  inflight_bytes : int;
  via_timeout : bool;
}

type t = {
  name : string;
  on_ack : ack_info -> unit;
  on_loss : loss_info -> unit;
  on_send : now:float -> inflight_bytes:int -> unit;
  cwnd_bytes : unit -> float;
  pacing_rate : unit -> float;
  state : unit -> string;
}

let min_cwnd_bytes ~mss = float_of_int (2 * mss)
