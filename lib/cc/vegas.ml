type params = { alpha : float; beta : float; initial_cwnd_mss : int }

let default_params = { alpha = 2.0; beta = 4.0; initial_cwnd_mss = 10 }

type t = {
  params : params;
  mss : float;
  mutable cwnd : float;  (* bytes *)
  mutable ssthresh : float;
  mutable base_rtt : float;  (* path minimum *)
  mutable srtt : float;
  mutable last_adjust_round : int;
}

let on_ack t (ack : Cc_types.ack_info) =
  if ack.f.rtt_sample < t.base_rtt then t.base_rtt <- ack.f.rtt_sample;
  t.srtt <-
    (if Float.is_nan t.srtt then ack.f.rtt_sample
     else (0.875 *. t.srtt) +. (0.125 *. ack.f.rtt_sample));
  let acked = float_of_int ack.acked_bytes in
  if t.cwnd < t.ssthresh then
    (* Vegas slow start: double every OTHER round so the diff estimate can
       settle; approximated as half-rate byte counting. *)
    t.cwnd <- t.cwnd +. (acked /. 2.0)
  else if ack.round > t.last_adjust_round then begin
    t.last_adjust_round <- ack.round;
    (* diff = (expected - actual) x base_rtt, in packets. *)
    let expected_pps = t.cwnd /. t.mss /. t.base_rtt in
    let actual_pps = t.cwnd /. t.mss /. t.srtt in
    let diff = (expected_pps -. actual_pps) *. t.base_rtt in
    if diff < t.params.alpha then t.cwnd <- t.cwnd +. t.mss
    else if diff > t.params.beta then t.cwnd <- t.cwnd -. t.mss
  end;
  let floor_ = Cc_types.min_cwnd_bytes ~mss:(int_of_float t.mss) in
  if t.cwnd < floor_ then t.cwnd <- floor_

let on_loss t (loss : Cc_types.loss_info) =
  let floor_ = Cc_types.min_cwnd_bytes ~mss:(int_of_float t.mss) in
  if loss.via_timeout then begin
    t.ssthresh <- Float.max (t.cwnd /. 2.0) floor_;
    t.cwnd <- floor_
  end
  else begin
    (* Vegas reduces by 1/4 on fast retransmit (gentler than Reno). *)
    t.ssthresh <- Float.max (0.75 *. t.cwnd) floor_;
    t.cwnd <- t.ssthresh
  end

let make ?(params = default_params) ~mss () =
  let t =
    {
      params;
      mss = float_of_int mss;
      cwnd = float_of_int (params.initial_cwnd_mss * mss);
      ssthresh = infinity;
      base_rtt = infinity;
      srtt = nan;
      last_adjust_round = -1;
    }
  in
  {
    Cc_types.name = "vegas";
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_send = (fun ~now:_ ~inflight_bytes:_ -> ());
    cwnd_bytes = (fun () -> t.cwnd);
    pacing_rate = (fun () -> nan);
    state = (fun () -> if t.cwnd < t.ssthresh then "SlowStart" else "Vegas");
  }
