type params = {
  beta : float;
  probe_rtt_interval : float;
  probe_rtt_cwnd_gain : float;
  headroom_growth : float;
}

let default_params =
  {
    beta = 0.7;
    probe_rtt_interval = 5.0;
    probe_rtt_cwnd_gain = 0.5;
    headroom_growth = 1.25;
  }

type mode = Startup | Drain | ProbeBW | ProbeRTT

let gain_cycle = [| 1.25; 0.75; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
let high_gain = 2.0 /. log 2.0

type t = {
  params : params;
  mss : float;
  rng : Sim_engine.Rng.t;
  btlbw : Windowed_filter.Max_rounds.t;
  mutable rtprop : float;
  mutable rtprop_stamp : float;
  mutable mode : mode;
  mutable pacing_gain : float;
  mutable cwnd_gain : float;
  mutable full_bw : float;
  mutable full_bw_count : int;
  mutable filled_pipe : bool;
  mutable cycle_index : int;
  mutable cycle_stamp : float;
  mutable probe_rtt_done_stamp : float;
  mutable inflight_hi : float;  (* bytes; upper bound learned from loss *)
  mutable hi_growth_mss : float;  (* PROBE_UP per-round growth, doubles *)
  mutable loss_in_round : bool;
  mutable round_id : int;
  mutable round_delivered : float;  (* bytes acked this round *)
  mutable round_lost : float;  (* bytes lost this round *)
}

let bdp t =
  let bw = Windowed_filter.Max_rounds.get t.btlbw in
  if Sim_engine.Stats.is_zero bw || t.rtprop = infinity then 0.0
  else bw *. t.rtprop

let min_cwnd t = 4.0 *. t.mss

let cwnd_bytes t =
  match t.mode with
  | ProbeRTT ->
    Float.max (t.params.probe_rtt_cwnd_gain *. bdp t) (min_cwnd t)
  | Startup | Drain | ProbeBW ->
    let bdp = bdp t in
    if Sim_engine.Stats.is_zero bdp then 10.0 *. t.mss
    else begin
      (* In cruise the draft leaves headroom below the bound for other
         flows; during probes the bound itself is ramped upward (the
         additive growth in [on_ack]), so no overshoot is needed here. *)
      let hi =
        if t.pacing_gain > 1.0 then t.inflight_hi
        else 0.85 *. t.inflight_hi
      in
      let model_cwnd = Float.max (t.cwnd_gain *. bdp) (min_cwnd t) in
      Float.max (Float.min model_cwnd hi) (min_cwnd t)
    end

let pacing_rate t =
  let bw = Windowed_filter.Max_rounds.get t.btlbw in
  if Sim_engine.Stats.is_zero bw then nan else t.pacing_gain *. bw

let enter_probe_bw t ~now =
  t.mode <- ProbeBW;
  t.cwnd_gain <- 2.0;
  let idx = Sim_engine.Rng.int t.rng (Array.length gain_cycle) in
  t.cycle_index <- (if idx = 1 then 2 else idx);
  t.pacing_gain <- gain_cycle.(t.cycle_index);
  t.cycle_stamp <- now

let check_full_pipe t =
  if not t.filled_pipe then begin
    let bw = Windowed_filter.Max_rounds.get t.btlbw in
    if bw >= t.full_bw *. 1.25 then begin
      t.full_bw <- bw;
      t.full_bw_count <- 0
    end
    else begin
      t.full_bw_count <- t.full_bw_count + 1;
      if t.full_bw_count >= 3 then t.filled_pipe <- true
    end
  end

let advance_cycle t (ack : Cc_types.ack_info) =
  let elapsed = ack.f.now -. t.cycle_stamp in
  let inflight = float_of_int ack.inflight_bytes in
  let should_advance =
    if Sim_engine.Stats.approx_eq t.pacing_gain 1.0 then elapsed > t.rtprop
    else if t.pacing_gain > 1.0 then
      elapsed > t.rtprop && inflight >= t.pacing_gain *. bdp t
    else elapsed > t.rtprop || inflight <= bdp t
  in
  if should_advance then begin
    (* Leaving a loss-free up-probe: the path has headroom, so raise the
       in-flight bound to what was actually flown, with a growth cap
       (the draft's PROBE_UP growth). *)
    if t.pacing_gain > 1.0 && not t.loss_in_round then
      t.inflight_hi <-
        Float.min
          (Float.min
             (Float.max t.inflight_hi inflight)
             (t.inflight_hi *. t.params.headroom_growth))
          (2.0 *. Float.max (bdp t) t.mss);
    t.cycle_index <- (t.cycle_index + 1) mod Array.length gain_cycle;
    t.pacing_gain <- gain_cycle.(t.cycle_index);
    t.cycle_stamp <- ack.f.now;
    (* Each up-probe restarts the inflight_hi growth ramp. *)
    if t.pacing_gain > 1.0 then t.hi_growth_mss <- 1.0
  end

let exit_probe_rtt t ~now =
  t.rtprop_stamp <- now;
  if t.filled_pipe then enter_probe_bw t ~now
  else begin
    t.mode <- Startup;
    t.pacing_gain <- high_gain;
    t.cwnd_gain <- high_gain
  end

let handle_probe_rtt t (ack : Cc_types.ack_info) =
  if Float.is_nan t.probe_rtt_done_stamp then begin
    if float_of_int ack.inflight_bytes <= cwnd_bytes t then
      t.probe_rtt_done_stamp <- ack.f.now +. 0.2
  end
  else if ack.f.now >= t.probe_rtt_done_stamp then exit_probe_rtt t ~now:ack.f.now

let on_ack t (ack : Cc_types.ack_info) =
  if
    ack.f.delivery_rate > 0.0
    && ((not ack.rate_app_limited)
        || ack.f.delivery_rate > Windowed_filter.Max_rounds.get t.btlbw)
  then
    Windowed_filter.Max_rounds.update t.btlbw ~round:ack.round
      ack.f.delivery_rate;
  let expired = ack.f.now -. t.rtprop_stamp > t.params.probe_rtt_interval in
  if ack.f.rtt_sample < t.rtprop || expired then begin
    t.rtprop <- ack.f.rtt_sample;
    t.rtprop_stamp <- ack.f.now
  end;
  if ack.round > t.round_id then begin
    t.round_id <- ack.round;
    t.round_delivered <- 0.0;
    t.round_lost <- 0.0;
    t.loss_in_round <- false
  end;
  t.round_delivered <- t.round_delivered +. float_of_int ack.acked_bytes;
  (* PROBE_UP: the in-flight bound is probed upward every round with
     doubling increments (the draft's bbr2_probe_inflight_hi_upward). *)
  if
    ack.round_start && t.mode = ProbeBW && t.pacing_gain > 1.0
    && t.inflight_hi < infinity
  then begin
    t.inflight_hi <-
      Float.min
        (t.inflight_hi +. (t.hi_growth_mss *. t.mss))
        (2.0 *. Float.max (bdp t) (10.0 *. t.mss));
    t.hi_growth_mss <- Float.min (t.hi_growth_mss *. 2.0) 32.0
  end;
  (match t.mode with
  | Startup ->
    if ack.round_start then check_full_pipe t;
    if t.filled_pipe then begin
      t.mode <- Drain;
      t.pacing_gain <- 1.0 /. high_gain
    end
  | Drain ->
    if float_of_int ack.inflight_bytes <= bdp t then
      enter_probe_bw t ~now:ack.f.now
  | ProbeBW -> advance_cycle t ack
  | ProbeRTT -> ());
  (match t.mode with
  | ProbeRTT -> ()
  | Startup | Drain | ProbeBW ->
    if expired && t.rtprop < infinity then begin
      t.mode <- ProbeRTT;
      t.probe_rtt_done_stamp <- nan
    end);
  if t.mode = ProbeRTT then handle_probe_rtt t ack

let on_loss t (loss : Cc_types.loss_info) =
  (* BBRv2's loss response (draft, simplified): the in-flight bound is cut
     only when the loss rate of the current round exceeds 2% while we are
     actively probing for bandwidth (Startup or a ProbeBW up-phase); cruise
     losses are tolerated like BBRv1. At most one cut per round. *)
  t.round_lost <- t.round_lost +. float_of_int loss.lost_bytes;
  let probing = t.mode = Startup || t.pacing_gain > 1.0 in
  let total = t.round_lost +. t.round_delivered in
  let loss_rate = if total <= 0.0 then 0.0 else t.round_lost /. total in
  if probing && (not t.loss_in_round) && loss_rate > 0.02 then begin
    t.loss_in_round <- true;
    let inflight = float_of_int loss.inflight_bytes in
    let reference = Float.max inflight (bdp t) in
    t.inflight_hi <-
      Float.max
        (t.params.beta *. Float.min reference t.inflight_hi)
        (4.0 *. t.mss);
    t.hi_growth_mss <- 1.0;
    if t.mode = Startup then t.filled_pipe <- true
  end

let make ?(params = default_params) ~mss ~rng () =
  let t =
    {
      params;
      mss = float_of_int mss;
      rng;
      btlbw = Windowed_filter.Max_rounds.create ~window:10;
      rtprop = infinity;
      rtprop_stamp = 0.0;
      mode = Startup;
      pacing_gain = high_gain;
      cwnd_gain = high_gain;
      full_bw = 0.0;
      full_bw_count = 0;
      filled_pipe = false;
      cycle_index = 0;
      cycle_stamp = 0.0;
      probe_rtt_done_stamp = nan;
      inflight_hi = infinity;
      hi_growth_mss = 1.0;
      loss_in_round = false;
      round_id = 0;
      round_delivered = 0.0;
      round_lost = 0.0;
    }
  in
  {
    Cc_types.name = "bbr2";
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_send = (fun ~now:_ ~inflight_bytes:_ -> ());
    cwnd_bytes = (fun () -> cwnd_bytes t);
    pacing_rate = (fun () -> pacing_rate t);
    state =
      (fun () ->
        match t.mode with
        | Startup -> "Startup"
        | Drain -> "Drain"
        | ProbeBW -> "ProbeBW"
        | ProbeRTT -> "ProbeRTT");
  }
