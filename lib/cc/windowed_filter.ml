(* Monotone-deque sliding extremum. Entries are (position, value) pairs kept
   in a ring of parallel float arrays, sorted so the front holds the current
   extremum. The arrays are grown geometrically and never shrunk, so steady
   state update/get allocate nothing — this sits on the per-ACK hot path of
   every BBR-family flow. *)

type deque = {
  mutable pos : float array;  (* ring, parallel to [value] *)
  mutable value : float array;
  mutable head : int;  (* index of the front (extremum) entry *)
  mutable len : int;
  window : float;
  is_max : bool;  (* max-filter when true, min-filter when false *)
}

let make_deque ~window ~is_max =
  {
    pos = Array.make 8 0.0;
    value = Array.make 8 0.0;
    head = 0;
    len = 0;
    window;
    is_max;
  }

(* [old_v] still dominates a new sample [v]: strictly better in the filter's
   direction. Ties are dropped in favour of the newer sample, matching the
   monotone-deque convention. The float annotations matter: without them
   the comparisons infer polymorphic, and every call boxes both floats to
   run generic compare. *)
let keeps d (old_v : float) (v : float) =
  if d.is_max then old_v > v else old_v < v

let[@simlint.alloc_ok "amortized geometric growth; arrays never shrink"] grow
    d =
  let cap = Array.length d.pos in
  let pos = Array.make (2 * cap) 0.0 in
  let value = Array.make (2 * cap) 0.0 in
  for i = 0 to d.len - 1 do
    let j = (d.head + i) land (cap - 1) in
    pos.(i) <- d.pos.(j);
    value.(i) <- d.value.(j)
  done;
  d.pos <- pos;
  d.value <- value;
  d.head <- 0

let deque_update d ~pos value =
  let mask = Array.length d.pos - 1 in
  (* Drop dominated entries from the back. *)
  while
    d.len > 0
    && not (keeps d d.value.((d.head + d.len - 1) land mask) value)
  do
    d.len <- d.len - 1
  done;
  if d.len = Array.length d.pos then grow d;
  let mask = Array.length d.pos - 1 in
  let back = (d.head + d.len) land mask in
  d.pos.(back) <- pos;
  d.value.(back) <- value;
  d.len <- d.len + 1;
  (* Expire entries older than the window from the front, always keeping at
     least one so [get] stays meaningful between sparse samples. *)
  while d.len > 1 && d.pos.(d.head) < pos -. d.window do
    d.head <- (d.head + 1) land mask;
    d.len <- d.len - 1
  done

let front_value d ~default = if d.len = 0 then default else d.value.(d.head)
let front_pos d = d.pos.(d.head)

module Max_rounds = struct
  type t = { d : deque; mutable last_round : int }

  let create ~window =
    if window <= 0 then invalid_arg "Max_rounds.create: window";
    { d = make_deque ~window:(float_of_int window) ~is_max:true;
      last_round = min_int }

  let update t ~round value =
    if round < t.last_round then
      invalid_arg "Max_rounds.update: decreasing round";
    t.last_round <- round;
    deque_update t.d ~pos:(float_of_int round) value

  let get t = front_value t.d ~default:0.0
end

module Min_time = struct
  type t = { d : deque }

  let create ~window =
    if window <= 0.0 then invalid_arg "Min_time.create: window";
    { d = make_deque ~window ~is_max:false }

  let update t ~time value = deque_update t.d ~pos:time value
  let get t = front_value t.d ~default:infinity
  let age t ~now = if t.d.len = 0 then infinity else now -. front_pos t.d
  let expired t ~now = t.d.len = 0 || now -. front_pos t.d > t.d.window
end
