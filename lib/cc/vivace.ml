type params = {
  epsilon : float;
  exponent : float;
  latency_coeff : float;
  loss_coeff : float;
  step_base : float;
  max_step_frac : float;
}

let default_params =
  {
    epsilon = 0.05;
    exponent = 0.9;
    latency_coeff = 900.0;
    loss_coeff = 11.35;
    step_base = 1.0;
    max_step_frac = 0.25;
  }

type phase =
  | Starting  (** Double the rate every MI until utility drops. *)
  | Probe_up  (** Running the r(1+ε) experiment. *)
  | Probe_down  (** Running the r(1−ε) experiment. *)

type mi = {
  start_time : float;
  attempted_rate : float;  (* bytes/s the MI paced at *)
  mutable acked_bytes : int;
  mutable lost_bytes : int;
  mutable first_rtt : float;
  mutable last_rtt : float;
}

type t = {
  params : params;
  mss : float;
  mutable rate : float;  (* base rate, bytes/s *)
  mutable srtt : float;
  mutable phase : phase;
  mutable mi : mi;
  mutable prev_utility : float;  (* Starting phase comparison *)
  mutable probe_up_utility : float;  (* Probe pair bookkeeping *)
  mutable consecutive_sign : int;  (* confidence amplifier *)
  mutable last_sign : int;
}

let[@simlint.alloc_ok
     "one record per monitor interval (~ one RTT), not per ACK"] fresh_mi
    ~now ~attempted_rate =
  { start_time = now; attempted_rate; acked_bytes = 0; lost_bytes = 0;
    first_rtt = nan; last_rtt = nan }

let mi_duration t = if Float.is_nan t.srtt then 0.05 else t.srtt

(* Utility of an MI, in the paper's Mbps units. The reward term uses the
   measured goodput; the latency/loss penalties scale with the rate the MI
   actually paced at (as in the PCC papers) — otherwise the r(1±ε)
   experiments become indistinguishable whenever the path caps goodput and
   the gradient degenerates. *)
let utility t ~(mi : mi) ~duration =
  if duration <= 0.0 then 0.0
  else begin
    let goodput_mbps =
      float_of_int mi.acked_bytes /. duration *. 8.0 /. 1e6
    in
    let attempted_mbps = mi.attempted_rate *. 8.0 /. 1e6 in
    let total = mi.acked_bytes + mi.lost_bytes in
    let loss_frac =
      if total = 0 then 0.0
      else float_of_int mi.lost_bytes /. float_of_int total
    in
    let rtt_gradient =
      if Float.is_nan mi.first_rtt || Float.is_nan mi.last_rtt then 0.0
      else Float.max 0.0 ((mi.last_rtt -. mi.first_rtt) /. duration)
    in
    (goodput_mbps ** t.params.exponent)
    -. (t.params.latency_coeff *. attempted_mbps *. rtt_gradient)
    -. (t.params.loss_coeff *. attempted_mbps *. loss_frac)
  end

let current_pacing_rate t =
  match t.phase with
  | Starting -> t.rate
  | Probe_up -> t.rate *. (1.0 +. t.params.epsilon)
  | Probe_down -> t.rate *. (1.0 -. t.params.epsilon)

let min_rate t = 2.0 *. t.mss /. Float.max (mi_duration t) 0.01

let apply_gradient t ~u_up ~u_down =
  let eps_rate_mbps = t.params.epsilon *. t.rate *. 8.0 /. 1e6 in
  if eps_rate_mbps > 0.0 then begin
    let gradient = (u_up -. u_down) /. (2.0 *. eps_rate_mbps) in
    let sign = compare gradient 0.0 in
    if sign <> 0 && sign = t.last_sign then
      t.consecutive_sign <- t.consecutive_sign + 1
    else t.consecutive_sign <- 1;
    t.last_sign <- sign;
    (* Confidence amplifier: consecutive same-sign gradients double the
       step (geometric, capped), as in the PCC papers' ω amplification —
       a linear amplifier recovers from deep back-off too slowly. *)
    let amplifier = Float.min 32.0 (2.0 ** float_of_int (t.consecutive_sign - 1)) in
    let step_mbps = t.params.step_base *. amplifier *. gradient in
    let step = step_mbps *. 1e6 /. 8.0 in
    let bound = t.params.max_step_frac *. t.rate in
    let step = Float.max (-.bound) (Float.min bound step) in
    t.rate <- Float.max (min_rate t) (t.rate +. step)
  end

let finish_mi t ~now =
  let duration = now -. t.mi.start_time in
  let u = utility t ~mi:t.mi ~duration in
  (match t.phase with
  | Starting ->
    if Float.is_nan t.prev_utility || u >= t.prev_utility then begin
      t.prev_utility <- u;
      t.rate <- 2.0 *. t.rate
    end
    else begin
      t.rate <- t.rate /. 2.0;
      t.phase <- Probe_up
    end
  | Probe_up ->
    t.probe_up_utility <- u;
    t.phase <- Probe_down
  | Probe_down ->
    apply_gradient t ~u_up:t.probe_up_utility ~u_down:u;
    t.phase <- Probe_up);
  t.mi <- fresh_mi ~now ~attempted_rate:(current_pacing_rate t)

let maybe_roll_mi t ~now =
  if now -. t.mi.start_time >= mi_duration t then finish_mi t ~now

let on_ack t (ack : Cc_types.ack_info) =
  t.srtt <-
    (if Float.is_nan t.srtt then ack.f.rtt_sample
     else (0.875 *. t.srtt) +. (0.125 *. ack.f.rtt_sample));
  t.mi.acked_bytes <- t.mi.acked_bytes + ack.acked_bytes;
  if Float.is_nan t.mi.first_rtt then t.mi.first_rtt <- ack.f.rtt_sample;
  t.mi.last_rtt <- ack.f.rtt_sample;
  maybe_roll_mi t ~now:ack.f.now

let on_loss t (loss : Cc_types.loss_info) =
  t.mi.lost_bytes <- t.mi.lost_bytes + loss.lost_bytes;
  maybe_roll_mi t ~now:loss.now

let make ?(params = default_params) ~mss ~rng:_ () =
  let t =
    {
      params;
      mss = float_of_int mss;
      rate = 10.0 *. float_of_int mss /. 0.05;  (* ~10 pkts per 50 ms *)
      srtt = nan;
      phase = Starting;
      mi = fresh_mi ~now:0.0 ~attempted_rate:(10.0 *. float_of_int mss /. 0.05);
      prev_utility = nan;
      probe_up_utility = 0.0;
      consecutive_sign = 0;
      last_sign = 0;
    }
  in
  {
    Cc_types.name = "vivace";
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_send = (fun ~now ~inflight_bytes:_ -> maybe_roll_mi t ~now);
    cwnd_bytes =
      (fun () ->
        (* Safety cap: at most two RTTs of data at the current rate. *)
        let rtt = if Float.is_nan t.srtt then 0.1 else t.srtt in
        Float.max (2.0 *. current_pacing_rate t *. rtt) (4.0 *. t.mss));
    pacing_rate = (fun () -> current_pacing_rate t);
    state =
      (fun () ->
        match t.phase with
        | Starting -> "Starting"
        | Probe_up -> "ProbeUp"
        | Probe_down -> "ProbeDown");
  }
