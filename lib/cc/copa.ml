type params = { delta : float; initial_cwnd_mss : int }

let default_params = { delta = 0.5; initial_cwnd_mss = 10 }

type direction = Up | Down | Unset

type t = {
  params : params;
  mss : float;
  mutable cwnd : float;  (* bytes *)
  rtt_min : Windowed_filter.Min_time.t;  (* path min over 100 s *)
  (* Raw RTT samples from the last 2 s: a time-ordered ring of parallel
     arrays (power-of-two capacity, oldest at [rtt_head]). Copa's standing
     RTT is a lazy min over the most recent srtt/2 of them; a ring keeps
     the per-ACK bookkeeping allocation-free. *)
  mutable rtt_times : float array;
  mutable rtt_samples : float array;
  mutable rtt_head : int;
  mutable rtt_len : int;
  mutable srtt : float;
  mutable velocity : float;
  mutable direction : direction;
  mutable direction_rounds : int;  (* consecutive rounds in same direction *)
  mutable last_round : int;
  mutable cwnd_at_round_start : float;
  mutable in_slow_start : bool;
}

let[@simlint.alloc_ok "amortized geometric growth; arrays never shrink"]
    grow_rtts t =
  let cap = Array.length t.rtt_times in
  let times = Array.make (2 * cap) 0.0 in
  let samples = Array.make (2 * cap) 0.0 in
  for i = 0 to t.rtt_len - 1 do
    let j = (t.rtt_head + i) land (cap - 1) in
    times.(i) <- t.rtt_times.(j);
    samples.(i) <- t.rtt_samples.(j)
  done;
  t.rtt_times <- times;
  t.rtt_samples <- samples;
  t.rtt_head <- 0

let update_rtt_filters t (ack : Cc_types.ack_info) =
  t.srtt <-
    (if Float.is_nan t.srtt then ack.f.rtt_sample
     else (0.875 *. t.srtt) +. (0.125 *. ack.f.rtt_sample));
  Windowed_filter.Min_time.update t.rtt_min ~time:ack.f.now ack.f.rtt_sample;
  (* Copa's standing RTT: minimum over the last srtt/2. The window tracks
     srtt, so we keep raw samples (pruned at 2 s) and evaluate lazily. *)
  let mask = Array.length t.rtt_times - 1 in
  while t.rtt_len > 0 && ack.f.now -. t.rtt_times.(t.rtt_head) > 2.0 do
    t.rtt_head <- (t.rtt_head + 1) land mask;
    t.rtt_len <- t.rtt_len - 1
  done;
  if t.rtt_len = Array.length t.rtt_times then grow_rtts t;
  let mask = Array.length t.rtt_times - 1 in
  let back = (t.rtt_head + t.rtt_len) land mask in
  t.rtt_times.(back) <- ack.f.now;
  t.rtt_samples.(back) <- ack.f.rtt_sample;
  t.rtt_len <- t.rtt_len + 1

(* Minimum RTT sample within the last srtt/2 seconds. *)
let standing_rtt t ~now =
  let window = if Float.is_nan t.srtt then 0.1 else t.srtt /. 2.0 in
  let mask = Array.length t.rtt_times - 1 in
  let acc = ref infinity in
  for i = 0 to t.rtt_len - 1 do
    let j = (t.rtt_head + i) land mask in
    if now -. t.rtt_times.(j) <= window then
      if t.rtt_samples.(j) < !acc then acc := t.rtt_samples.(j)
  done;
  !acc

let update_direction t (ack : Cc_types.ack_info) =
  if ack.round > t.last_round then begin
    let dir = if t.cwnd > t.cwnd_at_round_start then Up else Down in
    (match (t.direction, dir) with
    | Up, Up | Down, Down ->
      t.direction_rounds <- t.direction_rounds + 1;
      (* Velocity doubles only after 3 consistent rounds. *)
      if t.direction_rounds >= 3 then t.velocity <- t.velocity *. 2.0
    | _, _ ->
      t.direction <- dir;
      t.direction_rounds <- 0;
      t.velocity <- 1.0);
    t.last_round <- ack.round;
    t.cwnd_at_round_start <- t.cwnd
  end

let on_ack t (ack : Cc_types.ack_info) =
  update_rtt_filters t ack;
  update_direction t ack;
  let rtt_min = Windowed_filter.Min_time.get t.rtt_min in
  let rtt_standing = standing_rtt t ~now:ack.f.now in
  let rtt_standing =
    if rtt_standing = infinity then ack.f.rtt_sample else rtt_standing
  in
  let queuing_delay = Float.max 0.0 (rtt_standing -. rtt_min) in
  let cwnd_pkts = t.cwnd /. t.mss in
  (* The velocity step is capped at the acked bytes: the fastest Copa can
     legitimately move its window is slow-start speed (doubling per RTT).
     Without this cap the v-doubling mechanism can detach cwnd from any
     physically meaningful value. *)
  let step =
    Float.min
      (t.velocity /. (t.params.delta *. cwnd_pkts)
      *. (float_of_int ack.acked_bytes /. t.mss)
      *. t.mss)
      (float_of_int ack.acked_bytes)
  in
  if queuing_delay <= 0.0 then begin
    (* No queue: grow. In slow-start Copa doubles per RTT. *)
    if t.in_slow_start then t.cwnd <- t.cwnd +. float_of_int ack.acked_bytes
    else t.cwnd <- t.cwnd +. step
  end
  else begin
    t.in_slow_start <- false;
    let target_rate_pps = 1.0 /. (t.params.delta *. queuing_delay) in
    let current_rate_pps = cwnd_pkts /. rtt_standing in
    if current_rate_pps <= target_rate_pps then t.cwnd <- t.cwnd +. step
    else t.cwnd <- t.cwnd -. step
  end;
  let floor_ = Cc_types.min_cwnd_bytes ~mss:(int_of_float t.mss) in
  if t.cwnd < floor_ then t.cwnd <- floor_

let on_loss t (loss : Cc_types.loss_info) =
  (* Default-mode Copa reacts to loss only by leaving slow start; it relies
     on delay, not loss. A timeout still collapses the window for safety. *)
  t.in_slow_start <- false;
  if loss.via_timeout then t.cwnd <- Cc_types.min_cwnd_bytes ~mss:(int_of_float t.mss)

let make ?(params = default_params) ~mss () =
  let t =
    {
      params;
      mss = float_of_int mss;
      cwnd = float_of_int (params.initial_cwnd_mss * mss);
      rtt_min = Windowed_filter.Min_time.create ~window:100.0;
      rtt_times = Array.make 16 0.0;
      rtt_samples = Array.make 16 0.0;
      rtt_head = 0;
      rtt_len = 0;
      srtt = nan;
      velocity = 1.0;
      direction = Unset;
      direction_rounds = 0;
      last_round = -1;
      cwnd_at_round_start = 0.0;
      in_slow_start = true;
    }
  in
  {
    Cc_types.name = "copa";
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_send = (fun ~now:_ ~inflight_bytes:_ -> ());
    cwnd_bytes = (fun () -> t.cwnd);
    pacing_rate =
      (fun () ->
        (* Copa paces at 2×cwnd/RTT to smooth bursts. *)
        if Float.is_nan t.srtt then nan else 2.0 *. t.cwnd /. t.srtt);
    state = (fun () -> if t.in_slow_start then "SlowStart" else "Steady");
  }
