(** Evolutionary dynamics over a population of flow classes — the layer
    that turns the static NE machinery into the paper's actual question:
    does a population of users migrating CCAs converge to the mixed NE,
    and how fast?

    The population is partitioned into classes (in the experiments: RTT
    groups inside one scenario cell); the state is one BBR share per class,
    each in [0, 1], the complement playing CUBIC. Payoffs follow the
    tagged-flow convention: [u_bbr ~cls ~shares] is the payoff a single
    member of class [cls] receives for playing BBR while everyone else
    follows [shares] (and symmetrically for [u_cubic]) — i.e. both are
    deviation payoffs at the current state, which makes rest points of the
    dynamics coincide with the no-profitable-deviation conditions of
    {!Grouped_game.is_equilibrium} on the rounded counts.

    All dynamics operate on the {e normalized advantage}
    [a = (u_bbr - u_cubic) / max |u|] per class, so rates and temperatures
    are dimensionless and independent of the payoff scale (raw payoffs are
    throughputs in bps). Everything here is pure and deterministic; the
    simulation-backed payoff evaluation lives in the experiments layer. *)

type dynamics =
  | Replicator
      (** ds = rate * s (1 - s) a: proportional imitation; extinct
          strategies never revive; interior rest points are indifference
          points. *)
  | Best_response
      (** A [rate] fraction of each class switches to the current pure
          best response each generation; rate 1 is exact best response
          (which may cycle — see the fig10 non-convergence guard). *)
  | Logit of float
      (** Quantal (logit) response with the given temperature: classes
          drift toward [1 / (1 + exp (-a / tau))]. Rest points are logit
          equilibria, not exact NE. *)

val dynamics_name : dynamics -> string
(** ["replicator" | "best-response" | "logit"] (temperature elided). *)

val default_logit_temperature : float

val dynamics_of_string : string -> (dynamics, string) result
(** Parses ["replicator"], ["best-response"], ["logit"] and ["logit:TAU"]. *)

type payoffs = {
  u_cubic : cls:int -> shares:float array -> float;
  u_bbr : cls:int -> shares:float array -> float;
}
(** Tagged-flow deviation payoffs (see the module preamble). Non-finite
    payoffs are treated as zero advantage. *)

(** {1 Stepping} *)

val advantage_of : ub:float -> uc:float -> float
(** The normalized advantage underlying everything here:
    [(ub - uc) / max (|ub|, |uc|)], in [-2, 2]; 0 when either payoff is
    non-finite or both are 0. *)

val advantages : payoffs -> float array -> float array
(** Normalized advantage per class at the given state, each in [-2, 2]. *)

val advantages_into : payoffs -> shares:float array -> adv:float array -> unit
(** {!advantages} into a caller-owned array (the payoff-evaluation half of
    a generation; allocation lives here and in the payoff closures). *)

val step_into :
  dynamics ->
  rate:float ->
  adv:float array ->
  src:float array ->
  dst:float array ->
  unit
(** One generation given precomputed advantages, writing the clamped next
    state into [dst]. This is the allocation-free hot kernel (registered
    in tool/simlint/hotpaths.sexp, gated by [bench --alloc-gate]). [rate]
    must lie in (0, 1]. [src == dst] is allowed. *)

val step : dynamics -> rate:float -> payoffs -> float array -> float array
(** [advantages_into] + [step_into], allocating the result. *)

(** {1 Trajectories} *)

type trajectory = {
  states : float array array;
      (** Generation-indexed states; [states.(0)] is the initial state. *)
  residuals : float array;
      (** Per-generation epsilon-Nash residual (see {!residual}). *)
  converged_at : int option;
      (** First generation whose update moved every class by at most
          [tol]; [None] when the generation cap was hit first. *)
  fixated_at : int option;
      (** First generation at which every class is within [fix_tol] of a
          pure state (0 or 1). *)
}

val run :
  ?tol:float ->
  ?fix_tol:float ->
  dynamics ->
  rate:float ->
  max_generations:int ->
  payoffs ->
  init:float array ->
  trajectory
(** Iterate until convergence ([tol], default 1e-4 on the max per-class
    update) or [max_generations]. [fix_tol] (default 1e-3) only affects
    [fixated_at] reporting. Raises [Invalid_argument] on init shares
    outside [0, 1]. *)

(** {1 Equilibrium bridge} *)

val residual : payoffs -> float array -> float
(** The epsilon-Nash residual at a state: the largest positive normalized
    advantage available to any member able to switch (CUBIC members when
    the class share is < 1, BBR members when > 0); 0 when no deviation
    profits. A state is an epsilon-rest point iff [residual <= epsilon]. *)

val is_rest : ?epsilon:float -> payoffs -> float array -> bool
(** [residual p shares <= epsilon] (default 0). *)

val mean_share : weights:float array -> float array -> float
(** Population-wide BBR share, classes weighted (by class size). *)

val counts_of_shares : sizes:int array -> float array -> int array
(** Round shares onto a finite per-class population (clamped). *)

val shares_of_counts : sizes:int array -> int array -> float array
(** Exact inverse embedding; raises on counts outside [0, sizes]. *)
