type payoffs = { u_cubic : int -> float; u_bbr : int -> float }

let is_equilibrium ?(epsilon = 0.0) ~n payoffs k =
  if k < 0 || k > n then invalid_arg "Symmetric_game.is_equilibrium";
  if epsilon < 0.0 then invalid_arg "Symmetric_game.is_equilibrium: epsilon";
  let no_gain current target = Tolerance.no_gain ~epsilon current target in
  let cubic_stays =
    k = n || no_gain (payoffs.u_cubic k) (payoffs.u_bbr (k + 1))
  in
  let bbr_stays =
    k = 0 || no_gain (payoffs.u_bbr k) (payoffs.u_cubic (k - 1))
  in
  cubic_stays && bbr_stays

let equilibria ?epsilon ~n payoffs =
  List.filter (is_equilibrium ?epsilon ~n payoffs) (List.init (n + 1) Fun.id)

let equilibria_cubic_counts ?epsilon ~n payoffs =
  (* [equilibria] is increasing in k, so reversing while mapping [n - k]
     yields increasing CUBIC counts directly — no sort needed. *)
  List.rev_map (fun k -> n - k) (equilibria ?epsilon ~n payoffs)

let of_samples ~u_cubic ~u_bbr =
  if Array.length u_cubic <> Array.length u_bbr then
    invalid_arg "Symmetric_game.of_samples: length mismatch";
  { u_cubic = (fun k -> u_cubic.(k)); u_bbr = (fun k -> u_bbr.(k)) }
