(** The paper's game, exploiting symmetry (§4.1): n identical flows, two
    strategies (CUBIC = 0, BBR = 1), and payoffs that depend only on {e how
    many} flows play BBR. A distribution with [k] BBR flows is a Nash
    Equilibrium iff

    - [k < n] implies a CUBIC flow cannot gain by switching:
      u_c(k) ≥ u_b(k+1), and
    - [k > 0] implies a BBR flow cannot gain by switching back:
      u_b(k) ≥ u_c(k−1).

    This reduces the paper's §4.4 methodology ("enumerate all combinations
    and check if any individual flow gains by switching") from 2ⁿ profiles
    to n+1 distributions. *)

type payoffs = {
  u_cubic : int -> float;
      (** Per-flow CUBIC utility when [k] flows run BBR (defined for
          [k < n]). *)
  u_bbr : int -> float;
      (** Per-flow BBR utility when [k] flows run BBR (defined for
          [k > 0]). *)
}

val is_equilibrium : ?epsilon:float -> n:int -> payoffs -> int -> bool
(** Raises [Invalid_argument] if the distribution is outside [\[0, n\]].
    [epsilon] (default 0) is the relative tolerance of {!Tolerance.no_gain}:
    a deviation must gain more than [epsilon x max |payoff|] to break the
    equilibrium — the empirical analogue of the paper's observation that
    throughput gains are marginal around the NE, so measurement noise
    produces several neighbouring NE. *)

val equilibria : ?epsilon:float -> n:int -> payoffs -> int list
(** All equilibrium BBR-counts in increasing order. The paper's argument
    (Fig. 6) guarantees at least one exists whenever u_b(k) − fair-share
    crosses zero monotonically; this function just checks all n+1
    candidates. *)

val equilibria_cubic_counts : ?epsilon:float -> n:int -> payoffs -> int list
(** {!equilibria} expressed as CUBIC-flow counts (the y-axis of Fig. 9),
    in increasing order. *)

val of_samples : u_cubic:float array -> u_bbr:float array -> payoffs
(** Build payoffs from measured tables indexed by the BBR count
    [k ∈ 0..n]; [u_cubic.(n)] and [u_bbr.(0)] may be [nan] (never read). *)
