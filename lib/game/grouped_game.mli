(** Symmetric game with RTT groups, for the paper's multi-RTT experiment
    (§4.5, Fig. 10): flows are identical {e within} a group (same RTT), so a
    strategy profile reduces to one BBR count per group.

    For 3 groups of 10 flows this turns the nominal 2³⁰ profiles into 11³
    distributions, which is what makes the paper's exhaustive NE search
    feasible. *)

type payoffs = {
  u_cubic : group:int -> counts:int array -> float;
      (** Per-flow CUBIC utility in [group] when [counts.(g)] flows of each
          group [g] run BBR. Defined when [counts.(group) < sizes.(group)]. *)
  u_bbr : group:int -> counts:int array -> float;
      (** Defined when [counts.(group) > 0]. *)
}

val is_equilibrium :
  ?epsilon:float -> sizes:int array -> payoffs -> int array -> bool
(** [sizes.(g)] is the number of flows in group [g]; the candidate is a
    BBR-count array of the same length. [epsilon] is the relative no-gain
    tolerance of {!Tolerance.no_gain} (see
    {!Symmetric_game.is_equilibrium}). *)

val equilibria :
  ?epsilon:float -> sizes:int array -> payoffs -> int array list
(** All equilibrium distributions, lexicographically. The search space is
    Π (sizes.(g)+1); keep groups small. *)

val total_cubic : sizes:int array -> int array -> int
(** Total CUBIC flows in a distribution (Fig. 10's y-axis). *)
