let no_gain ?(epsilon = 0.0) ?(abs_tol = 0.0) current target =
  if epsilon < 0.0 then invalid_arg "Tolerance.no_gain: epsilon";
  if abs_tol < 0.0 then invalid_arg "Tolerance.no_gain: abs_tol";
  let slack =
    (epsilon *. Float.max (Float.abs current) (Float.abs target)) +. abs_tol
  in
  current >= target -. slack
