(** The one no-gain comparison shared by every equilibrium check.

    A deviation from [current] to [target] "does not gain" when [current]
    is at least [target] up to a combined relative + absolute slack:

    [current >= target - (epsilon * max |current| |target| + abs_tol)]

    The historical per-module comparison [current >= target * (1 - epsilon)]
    had two degeneracies this form removes:

    - [target ~ 0]: the relative slack vanished, so the tolerance had no
      effect at all near zero payoffs (and for [target = 0] exactly, any
      non-negative [current] passed regardless of [epsilon]). Scaling by
      [max |current| |target|] keeps the slack meaningful on whichever side
      of the comparison still has magnitude, and [abs_tol] covers the case
      where both are ~0.
    - [target < 0]: [target * (1 - epsilon)] moves {e up}, turning the
      tolerance into a penalty — [current = target] itself failed the
      check. Subtracting a non-negative slack keeps the direction right for
      any sign (utilities such as throughput-minus-delay go negative). *)

val no_gain : ?epsilon:float -> ?abs_tol:float -> float -> float -> bool
(** [no_gain ~epsilon ~abs_tol current target]. Defaults are 0 (exact
    comparison). [no_gain current target] is [true] whenever
    [current >= target], for any tolerances; NaN on either side is [false].
    Raises [Invalid_argument] on negative tolerances. *)
