type dynamics = Replicator | Best_response | Logit of float

let dynamics_name = function
  | Replicator -> "replicator"
  | Best_response -> "best-response"
  | Logit _ -> "logit"

let default_logit_temperature = 0.1

let dynamics_of_string s =
  match String.split_on_char ':' s with
  | [ "replicator" ] -> Ok Replicator
  | [ "best-response" ] | [ "best_response" ] -> Ok Best_response
  | [ "logit" ] -> Ok (Logit default_logit_temperature)
  | [ "logit"; tau ] -> (
    match float_of_string_opt tau with
    | Some tau when tau > 0.0 -> Ok (Logit tau)
    | Some _ | None ->
      Error (Printf.sprintf "logit temperature must be a positive float: %S" s))
  | _ ->
    Error
      (Printf.sprintf
         "unknown dynamics %S (expected replicator, best-response, logit or \
          logit:TAU)"
         s)

type payoffs = {
  u_cubic : cls:int -> shares:float array -> float;
  u_bbr : cls:int -> shares:float array -> float;
}

(* Normalized advantage of BBR over CUBIC for a tagged flow of the class:
   (u_bbr - u_cubic) / max(|u_bbr|, |u_cubic|), in [-2, 2]. Payoffs are
   raw throughputs/utilities of arbitrary scale (bps in the experiments),
   so every dynamics rate and logit temperature below is defined against
   this dimensionless advantage rather than the raw payoff gap. *)
let advantage_of ~ub ~uc =
  if not (Float.is_finite ub && Float.is_finite uc) then 0.0
  else
    let norm = Float.max (Float.abs ub) (Float.abs uc) in
    if norm > 0.0 then (ub -. uc) /. norm else 0.0

let advantages_into p ~shares ~adv =
  if Array.length adv <> Array.length shares then
    invalid_arg "Evolve.advantages_into: length mismatch";
  Array.iteri
    (fun g _ ->
      adv.(g) <-
        advantage_of
          ~ub:(p.u_bbr ~cls:g ~shares)
          ~uc:(p.u_cubic ~cls:g ~shares))
    shares

let advantages p shares =
  let adv = Array.make (Array.length shares) 0.0 in
  advantages_into p ~shares ~adv;
  adv

(* The per-generation update kernel, kept allocation-free: the payoff
   evaluation (simulation-backed, inherently allocating) happens upstream
   in [advantages_into]; this consumes the precomputed advantage array.
   Registered as a hot path in tool/simlint/hotpaths.sexp and gated by
   `bench --alloc-gate`. *)
let step_into dyn ~rate ~adv ~src ~dst =
  let n = Array.length src in
  if Array.length dst <> n || Array.length adv <> n then
    invalid_arg "Evolve.step_into: length mismatch";
  if rate <= 0.0 || rate > 1.0 then invalid_arg "Evolve.step_into: rate";
  for g = 0 to n - 1 do
    let s = src.(g) in
    let a = adv.(g) in
    let next =
      match dyn with
      | Replicator ->
        (* ds = rate * s (1 - s) a: extinct strategies never revive, and
           interior rest points have a = 0 (indifference). *)
        s +. (rate *. s *. (1.0 -. s) *. a)
      | Best_response ->
        (* A [rate] fraction of the class switches to the pure best
           response each generation; rate 1 is exact best response. *)
        let target = if a > 0.0 then 1.0 else if a < 0.0 then 0.0 else s in
        s +. (rate *. (target -. s))
      | Logit tau ->
        (* Quantal response: the class drifts toward the logit choice
           distribution at temperature tau. *)
        let target = 1.0 /. (1.0 +. exp (-.a /. tau)) in
        s +. (rate *. (target -. s))
    in
    dst.(g) <- Float.max 0.0 (Float.min 1.0 next)
  done

let step dyn ~rate p shares =
  let adv = advantages p shares in
  let dst = Array.make (Array.length shares) 0.0 in
  step_into dyn ~rate ~adv ~src:shares ~dst;
  dst

let residual p shares =
  let r = ref 0.0 in
  Array.iteri
    (fun g s ->
      let a =
        advantage_of
          ~ub:(p.u_bbr ~cls:g ~shares)
          ~uc:(p.u_cubic ~cls:g ~shares)
      in
      (* A CUBIC member can profit by a > 0 (only if any CUBIC remains);
         a BBR member by -a > 0 (only if any BBR exists). *)
      if s < 1.0 then r := Float.max !r a;
      if s > 0.0 then r := Float.max !r (-.a))
    shares;
  Float.max 0.0 !r

let is_rest ?(epsilon = 0.0) p shares =
  if epsilon < 0.0 then invalid_arg "Evolve.is_rest: epsilon";
  residual p shares <= epsilon

type trajectory = {
  states : float array array;
  residuals : float array;
  converged_at : int option;
  fixated_at : int option;
}

let fixated ~fix_tol shares =
  Array.for_all (fun s -> s <= fix_tol || s >= 1.0 -. fix_tol) shares

let run ?(tol = 1e-4) ?(fix_tol = 1e-3) dyn ~rate ~max_generations p ~init =
  if max_generations < 0 then invalid_arg "Evolve.run: max_generations";
  Array.iter
    (fun s ->
      if not (Float.is_finite s) || s < 0.0 || s > 1.0 then
        invalid_arg "Evolve.run: init shares must lie in [0, 1]")
    init;
  let n = Array.length init in
  let states = ref [ Array.copy init ] in
  let residuals = ref [ residual p init ] in
  let converged_at = ref None in
  let fixated_at = ref (if fixated ~fix_tol init then Some 0 else None) in
  let src = Array.copy init and dst = Array.make n 0.0 in
  let adv = Array.make n 0.0 in
  let gen = ref 0 in
  while Option.is_none !converged_at && !gen < max_generations do
    incr gen;
    advantages_into p ~shares:src ~adv;
    step_into dyn ~rate ~adv ~src ~dst;
    let delta = ref 0.0 in
    for g = 0 to n - 1 do
      delta := Float.max !delta (Float.abs (dst.(g) -. src.(g)));
      src.(g) <- dst.(g)
    done;
    states := Array.copy src :: !states;
    residuals := residual p src :: !residuals;
    if Option.is_none !fixated_at && fixated ~fix_tol src then
      fixated_at := Some !gen;
    if !delta <= tol then converged_at := Some !gen
  done;
  {
    states = Array.of_list (List.rev !states);
    residuals = Array.of_list (List.rev !residuals);
    converged_at = !converged_at;
    fixated_at = !fixated_at;
  }

let mean_share ~weights shares =
  if Array.length weights <> Array.length shares then
    invalid_arg "Evolve.mean_share: length mismatch";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Evolve.mean_share: weights";
  let acc = ref 0.0 in
  Array.iteri (fun g w -> acc := !acc +. (w *. shares.(g))) weights;
  !acc /. total

let counts_of_shares ~sizes shares =
  if Array.length sizes <> Array.length shares then
    invalid_arg "Evolve.counts_of_shares: length mismatch";
  Array.mapi
    (fun g s ->
      let size = sizes.(g) in
      let k = int_of_float (Float.round (s *. float_of_int size)) in
      max 0 (min size k))
    shares

let shares_of_counts ~sizes counts =
  if Array.length sizes <> Array.length counts then
    invalid_arg "Evolve.shares_of_counts: length mismatch";
  Array.map2
    (fun size k ->
      if size <= 0 then invalid_arg "Evolve.shares_of_counts: sizes";
      if k < 0 || k > size then
        invalid_arg "Evolve.shares_of_counts: count out of range";
      float_of_int k /. float_of_int size)
    sizes counts
