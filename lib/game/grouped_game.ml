type payoffs = {
  u_cubic : group:int -> counts:int array -> float;
  u_bbr : group:int -> counts:int array -> float;
}

let with_delta counts ~group ~delta =
  let copy = Array.copy counts in
  copy.(group) <- copy.(group) + delta;
  copy

let is_equilibrium ?(epsilon = 0.0) ~sizes payoffs counts =
  if Array.length sizes <> Array.length counts then
    invalid_arg "Grouped_game.is_equilibrium: length mismatch";
  if epsilon < 0.0 then invalid_arg "Grouped_game.is_equilibrium: epsilon";
  let no_gain current target = Tolerance.no_gain ~epsilon current target in
  Array.for_all Fun.id
    (Array.mapi
       (fun g k ->
         if k < 0 || k > sizes.(g) then
           invalid_arg "Grouped_game.is_equilibrium: count out of range";
         let cubic_stays =
           k = sizes.(g)
           || no_gain
                (payoffs.u_cubic ~group:g ~counts)
                (payoffs.u_bbr ~group:g
                   ~counts:(with_delta counts ~group:g ~delta:1))
         in
         let bbr_stays =
           k = 0
           || no_gain
                (payoffs.u_bbr ~group:g ~counts)
                (payoffs.u_cubic ~group:g
                   ~counts:(with_delta counts ~group:g ~delta:(-1)))
         in
         cubic_stays && bbr_stays)
       counts)

let equilibria ?epsilon ~sizes payoffs =
  let n_groups = Array.length sizes in
  let counts = Array.make n_groups 0 in
  let found = ref [] in
  let rec enumerate g =
    if g = n_groups then begin
      if is_equilibrium ?epsilon ~sizes payoffs counts then
        found := Array.copy counts :: !found
    end
    else
      for k = 0 to sizes.(g) do
        counts.(g) <- k;
        enumerate (g + 1)
      done
  in
  enumerate 0;
  List.rev !found

let total_cubic ~sizes counts =
  Array.fold_left ( + ) 0 sizes - Array.fold_left ( + ) 0 counts
