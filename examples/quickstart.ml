(* Quickstart: simulate one CUBIC flow competing with one BBR flow and
   compare the measured shares against the paper's model.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let mbps = 50.0 and rtt_ms = 40.0 and buffer_bdp = 8.0 in
  Printf.printf
    "Bottleneck: %.0f Mbps, base RTT %.0f ms, buffer %.0f BDP\n\n" mbps
    rtt_ms buffer_bdp;

  (* 1. Packet-level simulation (the substitute for the paper's testbed). *)
  let rate_bps = Sim_engine.Units.mbps mbps in
  let rtt = Sim_engine.Units.ms rtt_ms in
  let config =
    Tcpflow.Experiment.config ~warmup:(Sim_engine.Units.seconds 15.0)
      ~rate_bps
      ~buffer_bytes:
        (Tcpflow.Experiment.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:buffer_bdp)
      ~duration:(Sim_engine.Units.seconds 60.0)
      [
        Tcpflow.Experiment.flow_config ~base_rtt:rtt "cubic";
        Tcpflow.Experiment.flow_config ~base_rtt:rtt "bbr";
      ]
  in
  let result = Tcpflow.Experiment.run config in
  let measured name =
    Sim_engine.Units.bps_to_mbps
      (Sim_engine.Units.bps
         (Tcpflow.Experiment.mean_throughput_of_cca result name))
  in
  Printf.printf "simulated:  CUBIC %.2f Mbps   BBR %.2f Mbps\n"
    (measured "cubic") (measured "bbr");
  Printf.printf "            queuing delay %.1f ms, link utilization %.0f%%\n"
    (result.Tcpflow.Experiment.queuing_delay *. 1e3)
    (100.0 *. result.Tcpflow.Experiment.utilization);

  (* 2. The paper's 2-flow model (Eqs. 18-20). *)
  let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
  let solution = Ccmodel.Two_flow.solve params in
  Printf.printf "\nmodel:      CUBIC %.2f Mbps   BBR %.2f Mbps\n"
    (Sim_engine.Units.bps_to_mbps (Sim_engine.Units.bps solution.cubic_bandwidth_bps))
    (Sim_engine.Units.bps_to_mbps (Sim_engine.Units.bps solution.bbr_bandwidth_bps));

  (* 3. The Ware et al. baseline the paper refutes. *)
  let ware =
    Ccmodel.Ware.bbr_bandwidth_bps ~params ~n_bbr:1
      ~duration:(Sim_engine.Units.seconds 60.0)
  in
  Printf.printf "ware et al: BBR %.2f Mbps (over-estimate)\n"
    (Sim_engine.Units.bps_to_mbps (Sim_engine.Units.bps ware));

  let err =
    Sim_engine.Stats.relative_error
      ~predicted:solution.bbr_bandwidth_bps
      ~actual:(Tcpflow.Experiment.mean_throughput_of_cca result "bbr")
  in
  Printf.printf "\nmodel-vs-simulation error for BBR: %.1f%%\n" (100.0 *. err)
