(* Plugging a custom congestion-control algorithm into the simulator.

   We implement a deliberately simple AIMD controller ("aimd-2x": additive
   increase of 2 MSS per RTT, halve on loss), register it under a name, and
   race it against CUBIC — exactly the workflow for studying a new CCA's
   incentive properties with this library.

   Run with:  dune exec examples/custom_cca.exe *)

let make_aimd ~mss () =
  let mssf = float_of_int mss in
  let cwnd = ref (10.0 *. mssf) in
  let ssthresh = ref infinity in
  {
    Cca.Cc_types.name = "aimd-2x";
    on_ack =
      (fun ack ->
        let acked = float_of_int ack.Cca.Cc_types.acked_bytes in
        if !cwnd < !ssthresh then cwnd := !cwnd +. acked
        else cwnd := !cwnd +. (2.0 *. mssf *. acked /. !cwnd));
    on_loss =
      (fun loss ->
        ssthresh := Float.max (!cwnd /. 2.0) (2.0 *. mssf);
        cwnd := if loss.Cca.Cc_types.via_timeout then mssf else !ssthresh);
    on_send = (fun ~now:_ ~inflight_bytes:_ -> ());
    cwnd_bytes = (fun () -> Float.max !cwnd (2.0 *. mssf));
    pacing_rate = (fun () -> nan);
    state = (fun () -> if !cwnd < !ssthresh then "SlowStart" else "AIMD");
  }

let () =
  (* Register so experiments can refer to it by name. *)
  Cca.Registry.register "aimd-2x" (fun ~mss ~rng:_ -> make_aimd ~mss ());

  let rate_bps = Sim_engine.Units.mbps 40.0 in
  let rtt = Sim_engine.Units.ms 30.0 in
  Printf.printf "aimd-2x vs CUBIC on 40 Mbps / 30 ms, varying buffer:\n\n";
  Printf.printf "%12s %14s %14s\n" "buffer(BDP)" "aimd-2x(Mbps)" "cubic(Mbps)";
  List.iter
    (fun bdp ->
      let config =
        Tcpflow.Experiment.config ~warmup:(Sim_engine.Units.seconds 10.0)
          ~rate_bps
          ~buffer_bytes:
            (Tcpflow.Experiment.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp)
          ~duration:(Sim_engine.Units.seconds 45.0)
          [
            Tcpflow.Experiment.flow_config ~base_rtt:rtt "aimd-2x";
            Tcpflow.Experiment.flow_config ~base_rtt:rtt "cubic";
          ]
      in
      let result = Tcpflow.Experiment.run config in
      let get name =
        Sim_engine.Units.bps_to_mbps
          (Sim_engine.Units.bps
             (Tcpflow.Experiment.mean_throughput_of_cca result name))
      in
      Printf.printf "%12.1f %14.2f %14.2f\n%!" bdp (get "aimd-2x")
        (get "cubic"))
    [ 1.0; 3.0; 8.0; 16.0 ];
  Printf.printf
    "\nCUBIC's cubic window growth beats linear AIMD on this high-BDP path \
     in deep buffers,\nwhile shallow buffers keep both near their fair \
     share.\n"
