(* Buffer-sizing implications of a BBR-heavy Internet (paper §5).

   Router buffers are classically sized for loss-based TCP. BBR keeps up to
   2xBDP in flight regardless of loss, so in a future with many BBR flows,
   small buffers squeeze CUBIC toward starvation. This example sweeps the
   buffer size for a fixed 12-flow mix and reports each class's per-flow
   throughput and the shared queuing delay — the trade-off a buffer-sizing
   rule must navigate.

   Run with:  dune exec examples/buffer_sizing.exe *)

let () =
  let mbps = 60.0 and rtt = Sim_engine.Units.ms 30.0 in
  let rate_bps = Sim_engine.Units.mbps mbps in
  let n_cubic = 6 and n_bbr = 6 in
  Printf.printf
    "%d CUBIC + %d BBR flows on %.0f Mbps / %.0f ms; sweeping buffer size\n\n"
    n_cubic n_bbr mbps (Sim_engine.Units.sec_to_ms rtt);
  Printf.printf "%12s %14s %14s %12s %10s\n" "buffer(BDP)" "cubic(Mbps)"
    "bbr(Mbps)" "qdelay(ms)" "drops";
  List.iter
    (fun bdp ->
      let config =
        Tcpflow.Experiment.config ~warmup:(Sim_engine.Units.seconds 25.0)
          ~rate_bps
          ~buffer_bytes:
            (Tcpflow.Experiment.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp)
          ~duration:(Sim_engine.Units.seconds 70.0)
          (List.init (n_cubic + n_bbr) (fun i ->
               Tcpflow.Experiment.flow_config ~base_rtt:rtt
                 (if i < n_cubic then "cubic" else "bbr")))
      in
      let r = Tcpflow.Experiment.run config in
      let get name =
        Sim_engine.Units.bps_to_mbps
          (Sim_engine.Units.bps (Tcpflow.Experiment.mean_throughput_of_cca r name))
      in
      Printf.printf "%12.2f %14.2f %14.2f %12.1f %10d\n%!" bdp (get "cubic")
        (get "bbr")
        (r.Tcpflow.Experiment.queuing_delay *. 1e3)
        r.Tcpflow.Experiment.drops)
    [ 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ];
  Printf.printf
    "\nShallow buffers (<1 BDP): BBR's in-flight cap dominates and CUBIC \
     starves -\nexactly the paper's warning that buffer-sizing rules of \
     thumb need revisiting\nfor a BBR-heavy Internet. Deeper buffers \
     restore CUBIC's share at the cost of\nqueuing delay (bufferbloat).\n"
