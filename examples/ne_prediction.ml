(* Predicting the Nash Equilibrium CUBIC/BBR mix for a network.

   Given a bottleneck (capacity, buffer, RTT) and a flow count, this example
   answers the paper's headline question for that network: how many flows
   will run CUBIC vs BBR once nobody gains by switching? It prints the
   model's prediction (Eq. 25) and verifies it empirically with
   packet-level simulated payoffs.

   Run with:  dune exec examples/ne_prediction.exe *)

let n = 20
let mbps = 100.0
let rtt_ms = 40.0

let () =
  Printf.printf
    "Nash Equilibrium prediction for %d flows at %.0f Mbps / %.0f ms\n\n" n
    mbps rtt_ms;
  Printf.printf "%12s %22s %22s %14s\n" "buffer(BDP)" "model #cubic (synch)"
    "model #cubic (desynch)" "observed NE";
  List.iter
    (fun buffer_bdp ->
      let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
      let region = Ccmodel.Ne.nash_region params ~n in
      (* Empirical check: measure payoffs with the packet-level simulator
         and find the equilibria of the resulting symmetric game. *)
      let capacity_bps = Sim_engine.Units.mbps mbps in
      let payoff =
        Experiments.Ne_search.packet_payoff
          ~duration:(Sim_engine.Units.seconds 60.0)
          ~warmup:(Sim_engine.Units.seconds 25.0)
          ~ctx:Experiments.Common.quick ~mbps ~rtt_ms ~buffer_bdp
          ~other:"bbr" ~n ()
      in
      let observed =
        Experiments.Ne_search.observed_equilibria ~epsilon:0.02 ~n
          ~fair_bps:((capacity_bps :> float) /. float_of_int n)
          ~payoff ~window:2 ()
      in
      Printf.printf "%12.1f %22.1f %22.1f %14s\n%!" buffer_bdp
        region.cubic_at_ne_sync region.cubic_at_ne_desync
        (String.concat "/"
           (List.map (fun k -> string_of_int (n - k)) observed)))
    [ 2.0; 5.0; 10.0; 25.0 ];
  Printf.printf
    "\nReading: a mixed NE (neither 0 nor %d CUBIC flows) at most buffer\n\
     sizes is the paper's core prediction - BBR will NOT fully take over.\n"
    n
