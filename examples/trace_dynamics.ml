(* Tracing congestion dynamics: the classic cwnd-over-time picture.

   Races one CUBIC flow against one BBR flow and dumps both flows' cwnd /
   in-flight traces as CSV (to stdout paths), plus a textual summary of
   BBR's state-machine occupancy — the sawtooth-vs-flat picture from the
   paper's §2 background.

   Run with:  dune exec examples/trace_dynamics.exe *)

module Sim = Sim_engine.Sim
module Units = Sim_engine.Units

let () =
  let rate_bps = Units.mbps 50.0 in
  let rtt = Units.ms 40.0 in
  let sim = Sim.create ~seed:7 () in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps
      ~buffer_bytes:
        (Tcpflow.Experiment.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:5.0)
      ~flows:
        [
          { Netsim.Dumbbell.flow = 0; base_rtt = rtt };
          { Netsim.Dumbbell.flow = 1; base_rtt = rtt };
        ]
      ()
  in
  let mk flow name =
    let rng = Sim_engine.Rng.split (Sim.rng sim) in
    let cc = Cca.Registry.create name ~mss:Units.mss ~rng in
    Tcpflow.Sender.create ~net ~flow ~cc ()
  in
  let cubic = mk 0 "cubic" and bbr = mk 1 "bbr" in
  let trace_cubic = Tcpflow.Flow_trace.attach ~sim ~sender:cubic ~period:0.05 () in
  let trace_bbr = Tcpflow.Flow_trace.attach ~sim ~sender:bbr ~period:0.05 () in
  Sim.run ~until:60.0 sim;

  let write name trace =
    let path = Filename.concat (Filename.get_temp_dir_name ()) name in
    let oc = open_out path in
    output_string oc (Tcpflow.Flow_trace.to_csv trace);
    close_out oc;
    path
  in
  Printf.printf "cwnd traces written:\n  %s\n  %s\n\n"
    (write "cubic_trace.csv" trace_cubic)
    (write "bbr_trace.csv" trace_bbr);

  let summarize name trace =
    let series = Tcpflow.Flow_trace.cwnd_series trace in
    Printf.printf
      "%-6s cwnd min/mean/max = %6.0f / %6.0f / %6.0f bytes; goodput(10-60s) \
       = %.2f Mbps\n"
      name
      (Sim_engine.Timeseries.min_value series ~from_:10.0 ())
      (Sim_engine.Timeseries.time_weighted_mean series ~from_:10.0 ~until:60.0)
      (Sim_engine.Timeseries.max_value series ~from_:10.0 ())
      (Units.bps_to_mbps
         (Units.bps
            (Tcpflow.Flow_trace.throughput_between trace ~from_:10.0
               ~until:60.0)))
  in
  summarize "cubic" trace_cubic;
  summarize "bbr" trace_bbr;

  Printf.printf "\nBBR state occupancy (fraction of samples):\n";
  List.iter
    (fun (state, frac) -> Printf.printf "  %-10s %5.1f%%\n" state (100.0 *. frac))
    (Tcpflow.Flow_trace.state_occupancy trace_bbr);
  Printf.printf
    "\nThe CUBIC trace shows the 0.7x sawtooth of Eq. (1); BBR holds ~2x its\n\
     estimated BDP with 10-second ProbeRTT dips - the mechanics behind the\n\
     paper's model.\n"
