(* Command-line driver: regenerate any of the paper's tables/figures, and
   drive the correctness tooling.

   Usage:
     repro list
     repro run fig03 [--full] [--jobs 4] [--cache DIR] [--out results/]
                     [--trace DIR]
     repro all [--full] [--jobs 4] [--cache DIR] [--out results/]
     repro fuzz [--count 100] [--seed 1|from-commit] [--jobs 4]
                [--replay-out FILE] [--no-shrink] [--fault NAME]
                [--backend packet|fluid|ode]
     repro replay FILE [--fault NAME] [--backend packet|fluid|ode]
     repro compare [--backend packet --backend fluid ...] [--cca cubic ...]
                   [--mbps 100] [--rtt 40] [--buffer 10] [--duration 30]
     repro evolve [--dynamics replicator|best-response|logit[:TAU]]
                  [--backend fluid|ode|packet] [--seed 1] [--jobs 4]
                  [--generations N] [--spot-checks N] [--out results/]
*)

let ctx_of ~full ~jobs ~batch ~cache_dir ~trace_dir =
  Experiments.Common.ctx ~jobs ~batch ?cache_dir ?trace_dir
    (if full then Experiments.Common.Full else Experiments.Common.Quick)

(* Aggregate the .metrics sidecars a traced entry produced into one
   summary line: sum the integer counters, recompute the rates from the
   sums, and average the queue-delay quantiles across configs. *)
let trace_summary ~dir new_metrics =
  let parse path =
    let ic = open_in (Filename.concat dir path) in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    List.filter_map
      (fun kv ->
        match String.index_opt kv '=' with
        | Some i ->
          Some
            ( String.sub kv 0 i,
              String.sub kv (i + 1) (String.length kv - i - 1) )
        | None -> None)
      (String.split_on_char ' ' line)
  in
  let parsed = List.map parse new_metrics in
  let sum key =
    List.fold_left
      (fun acc kvs ->
        match List.assoc_opt key kvs with
        | Some v -> acc + int_of_string v
        | None -> acc)
      0 parsed
  in
  let avg key =
    let vs =
      List.filter_map
        (fun kvs ->
          match List.assoc_opt key kvs with
          | Some v ->
            let f = float_of_string v in
            if Float.is_nan f then None else Some f
          | None -> None)
        parsed
    in
    Experiments.Common.mean vs
  in
  let sends = sum "sends" and retransmits = sum "retransmits" in
  let drops = sum "drops" in
  let rate n = if sends = 0 then nan else float_of_int n /. float_of_int sends in
  Printf.sprintf
    "traces=%d sends=%d retransmits=%d acks=%d seg_losts=%d drops=%d \
     rto_fires=%d recovery_entries=%d retransmit_rate=%.6f drop_rate=%.6f \
     p50_queue_delay=%.6f p90_queue_delay=%.6f p99_queue_delay=%.6f"
    (List.length parsed) sends retransmits (sum "acks") (sum "seg_losts")
    drops (sum "rto_fires") (sum "recovery_entries") (rate retransmits)
    (rate drops)
    (avg "p50_queue_delay")
    (avg "p90_queue_delay")
    (avg "p99_queue_delay")

(* Per-entry work accounting comes from the process-wide Exec counters:
   snapshot around the run and report the delta, so a cached re-run
   visibly says "0 simulated". *)
let run_entry ~out entry (ctx : Experiments.Common.ctx) =
  (* Wall-clock on purpose: reports how long the driver took, not model time. *)
  let t0 = Unix.gettimeofday () in (* simlint: allow R1 *)
  let metrics_before =
    match ctx.trace_dir with
    | Some dir when Sys.file_exists dir ->
      Array.to_list (Sys.readdir dir)
      |> List.filter (fun f -> Filename.check_suffix f ".metrics")
    | _ -> []
  in
  let before = Sim_engine.Exec.counters () in
  let table = entry.Experiments.Catalog.run ctx in
  let after = Sim_engine.Exec.counters () in
  Experiments.Common.print_table Format.std_formatter table;
  (match out with
  | Some dir ->
    let path = Experiments.Common.write_csv ~dir table in
    Format.printf "wrote %s@." path
  | None -> ());
  (match ctx.trace_dir with
  | Some dir when Sys.file_exists dir ->
    let new_metrics =
      Array.to_list (Sys.readdir dir)
      |> List.filter (fun f ->
             Filename.check_suffix f ".metrics"
             && not (List.mem f metrics_before))
      |> List.sort compare
    in
    if new_metrics <> [] then
      Format.printf "%s trace: %s@." entry.id (trace_summary ~dir new_metrics)
  | _ -> ());
  let evictions = after.memo_evictions - before.memo_evictions in
  Format.printf "(%s took %.1f s; %d simulated, %d cache hits%s)@.@." entry.id
    (Unix.gettimeofday () -. t0 (* simlint: allow R1 *))
    (after.jobs_executed - before.jobs_executed)
    (after.cache_hits - before.cache_hits)
    (if evictions = 0 then ""
     else Printf.sprintf ", %d memo evictions" evictions)

open Cmdliner

let full_arg =
  let doc = "Paper-scale grids and 2-minute runs (default: quick mode)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let out_arg =
  let doc = "Also write each table as CSV into $(docv)." in
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR" ~doc)

let positive_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok _ -> Error (`Msg "must be >= 1")
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let jobs_arg =
  let doc =
    "Worker domains for simulation batches (default: the machine's \
     recommended domain count)."
  in
  Arg.(
    value
    & opt positive_int (Sim_engine.Exec.domain_count ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let batch_arg =
  let doc =
    "Specs per batched analytic-backend call when dispatching grid cache \
     misses ($(b,1) disables batching). Outcomes are byte-identical for \
     every value; this only trades throughput against sharding \
     granularity."
  in
  Arg.(value & opt positive_int 8 & info [ "batch" ] ~docv:"N" ~doc)

let cache_arg =
  let doc =
    "Cache simulation results in $(docv) (content-addressed by config \
     digest); re-runs with unchanged parameters replay from disk."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let trace_arg =
  let doc =
    "Write a structured event trace per simulated config into $(docv): \
     $(b,<digest>.jsonl) (the event stream) and $(b,<digest>.metrics) (a \
     one-line rollup). Traced runs bypass the result cache."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"DIR" ~doc)

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun e ->
        Format.printf "%-8s %s@." e.Experiments.Catalog.id e.summary)
      Experiments.Catalog.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment by id (see $(b,list))." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID")
  in
  let run id full out jobs batch cache_dir trace_dir =
    match Experiments.Catalog.find id with
    | None ->
      Format.eprintf "unknown experiment %S; try: %s@." id
        (String.concat ", " (Experiments.Catalog.ids ()));
      exit 1
    | Some entry ->
      run_entry ~out entry (ctx_of ~full ~jobs ~batch ~cache_dir ~trace_dir)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ id_arg $ full_arg $ out_arg $ jobs_arg $ batch_arg
      $ cache_arg $ trace_arg)

let model_cmd =
  let doc =
    "Print the model's predictions (two-flow split, Ware baseline, Nash \
     region) for a given network."
  in
  let mbps_arg =
    Arg.(value & opt float 100.0 & info [ "mbps" ] ~docv:"MBPS" ~doc:"Link capacity.")
  in
  let rtt_arg =
    Arg.(value & opt float 40.0 & info [ "rtt" ] ~docv:"MS" ~doc:"Base RTT in ms.")
  in
  let buffer_arg =
    Arg.(value & opt float 10.0 & info [ "buffer" ] ~docv:"BDP" ~doc:"Buffer in BDP.")
  in
  let flows_arg =
    Arg.(value & opt int 10 & info [ "flows" ] ~docv:"N" ~doc:"Total flows for the NE prediction.")
  in
  let run mbps rtt_ms buffer_bdp n =
    let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
    let s = Ccmodel.Two_flow.solve params in
    let to_mbps bps = Sim_engine.Units.bps_to_mbps (Sim_engine.Units.bps bps) in
    Format.printf "network: %a@." Ccmodel.Params.pp params;
    Format.printf "2-flow model: CUBIC %.2f Mbps, BBR %.2f Mbps (b_b = %.0f B, b_cmin = %.0f B)@."
      (to_mbps s.cubic_bandwidth_bps) (to_mbps s.bbr_bandwidth_bps)
      s.bbr_buffer_bytes s.cubic_min_buffer_bytes;
    Format.printf "predicted queuing delay: %.1f ms@."
      (1e3 *. Ccmodel.Two_flow.predicted_queuing_delay params);
    Format.printf "ware et al. baseline: BBR %.2f Mbps@."
      (to_mbps
         (Ccmodel.Ware.bbr_bandwidth_bps ~params ~n_bbr:1
            ~duration:(Sim_engine.Units.seconds 120.0)));
    let region = Ccmodel.Ne.nash_region params ~n in
    Format.printf
      "Nash region for %d flows: %.1f (synch) to %.1f (desynch) CUBIC flows@."
      n region.cubic_at_ne_sync region.cubic_at_ne_desync
  in
  Cmd.v (Cmd.info "model" ~doc)
    Term.(const run $ mbps_arg $ rtt_arg $ buffer_arg $ flows_arg)

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let run full out jobs batch cache_dir trace_dir =
    let ctx = ctx_of ~full ~jobs ~batch ~cache_dir ~trace_dir in
    List.iter (fun entry -> run_entry ~out entry ctx) Experiments.Catalog.all
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const run $ full_arg $ out_arg $ jobs_arg $ batch_arg $ cache_arg
      $ trace_arg)

(* --- correctness tooling: fuzz + replay ------------------------------- *)

let fault_arg =
  let doc =
    "Interpose a named event-stream corruption between the hub and the \
     auditor (see Sim_check.Fuzz.faults). Used to exercise the \
     fuzz/shrink/replay pipeline against a known-bad stream."
  in
  let fault_conv =
    let parse s =
      match Sim_check.Fuzz.fault_named s with
      | Some f -> Ok f
      | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown fault %S; known: %s" s
                (String.concat ", "
                   (List.map
                      (fun f -> f.Sim_check.Fuzz.fault_name)
                      Sim_check.Fuzz.faults))))
    in
    Arg.conv (parse, fun ppf f -> Fmt.string ppf f.Sim_check.Fuzz.fault_name)
  in
  Arg.(value & opt (some fault_conv) None & info [ "fault" ] ~docv:"NAME" ~doc)

let backend_conv =
  let parse s =
    match Sim_backend.find s with
    | Ok b -> Ok b
    | Error _ ->
      Error
        (`Msg
           (Printf.sprintf "unknown backend %S; known: %s" s
              (String.concat ", " (Sim_backend.names ()))))
  in
  Arg.conv (parse, fun ppf b -> Fmt.string ppf (Sim_backend.name b))

let backend_arg =
  let doc =
    "Simulation backend to fuzz: $(b,packet) (default; full event-stream \
     audit) or an analytic backend ($(b,fluid), $(b,ode)) checked against \
     outcome-level invariants and cross-backend parity."
  in
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "backend" ] ~docv:"NAME" ~doc)

let fuzz_cmd =
  let doc =
    "Fuzz random scenarios under the runtime invariant auditor; on failure, \
     shrink to a minimal scenario and save a deterministic replay file."
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of scenarios to run.")
  in
  let seed_arg =
    let doc =
      "Campaign seed: an integer, or $(b,from-commit) to derive one from the \
       current git HEAD (stable per commit, different across commits)."
    in
    let seed_conv =
      let parse s =
        if s = "from-commit" then begin
          let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
          let line = try input_line ic with End_of_file -> "" in
          ignore (Unix.close_process_in ic);
          if line = "" then Ok 1
          else begin
            (* Fold the hash digest into a positive int seed. *)
            let d = Digest.string line in
            let n = ref 0 in
            String.iter (fun c -> n := ((!n * 31) + Char.code c) land 0x3FFFFFFF) d;
            Ok (max 1 !n)
          end
        end
        else
          match int_of_string_opt s with
          | Some n -> Ok n
          | None -> Error (`Msg "expected an integer or 'from-commit'")
      in
      Arg.conv (parse, Fmt.int)
    in
    Arg.(value & opt seed_conv 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let shrink_arg =
    let on =
      Arg.info [ "shrink" ]
        ~doc:"Shrink the first failure to a minimal scenario (default)."
    in
    let off = Arg.info [ "no-shrink" ] ~doc:"Report the failure as generated." in
    Arg.(value & vflag true [ (true, on); (false, off) ])
  in
  let replay_out_arg =
    Arg.(
      value
      & opt string "fuzz-failure.scenario"
      & info [ "replay-out" ] ~docv:"FILE"
          ~doc:"Where to save the (shrunk) failing scenario.")
  in
  let run count seed jobs shrink replay_out fault backend =
    let analytic =
      match backend with
      | Some b when not (String.equal (Sim_backend.name b) "packet") -> Some b
      | Some _ | None -> None
    in
    (match (analytic, fault) with
    | Some b, Some _ ->
      Format.eprintf
        "fuzz: --fault applies to the packet event stream; backend %s has \
         none@."
        (Sim_backend.name b);
      exit 2
    | _ -> ());
    Format.printf "fuzz: %d scenarios, seed %d, %d jobs%s%s@." count seed jobs
      (match fault with
      | Some f -> Printf.sprintf ", fault=%s" f.Sim_check.Fuzz.fault_name
      | None -> "")
      (match analytic with
      | Some b -> Printf.sprintf ", backend=%s" (Sim_backend.name b)
      | None -> "");
    let c =
      match analytic with
      | Some backend ->
        Sim_check.Fuzz.backend_campaign ~backend ~jobs ~count ~seed ()
      | None -> Sim_check.Fuzz.campaign ?fault ~jobs ~count ~seed ()
    in
    Format.printf "fuzz: %d/%d passed@." c.passed c.total;
    match c.failures with
    | [] -> ()
    | first :: _ ->
      List.iter
        (fun (f : Sim_check.Fuzz.case) ->
          Format.printf "  case %d FAILED: %s@.    %s@." f.case_index
            (Sim_check.Scenario.describe f.case_scenario)
            (Sim_check.Fuzz.outcome_to_string f.case_outcome))
        c.failures;
      let scenario =
        if shrink then begin
          Format.printf "shrinking case %d...@." first.case_index;
          let s =
            match analytic with
            | Some backend ->
              Sim_check.Fuzz.shrink_backend ~backend first.case_scenario
            | None -> Sim_check.Fuzz.shrink ?fault first.case_scenario
          in
          Format.printf "shrunk to: %s@." (Sim_check.Scenario.describe s);
          s
        end
        else first.case_scenario
      in
      Sim_check.Scenario.save ~path:replay_out scenario;
      (let outcome =
         match analytic with
         | Some backend ->
           Sim_check.Fuzz.run_scenario_backend ~backend scenario
         | None -> Sim_check.Fuzz.run_scenario ?fault scenario
       in
       match outcome with
       | Pass -> () (* can't happen: shrink preserves failure *)
       | outcome ->
         Format.printf "%s@." (Sim_check.Fuzz.outcome_to_string outcome));
      Format.printf "replay saved to %s (repro replay %s%s%s)@." replay_out
        replay_out
        (match fault with
        | Some f -> Printf.sprintf " --fault %s" f.Sim_check.Fuzz.fault_name
        | None -> "")
        (match analytic with
        | Some b -> Printf.sprintf " --backend %s" (Sim_backend.name b)
        | None -> "");
      exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ count_arg $ seed_arg $ jobs_arg $ shrink_arg
      $ replay_out_arg $ fault_arg $ backend_arg)

let replay_cmd =
  let doc =
    "Re-run a saved fuzz scenario deterministically and report its verdict."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run path fault backend =
    let result =
      match backend with
      | Some b when not (String.equal (Sim_backend.name b) "packet") ->
        if Option.is_some fault then begin
          Format.eprintf "replay: --fault needs the packet backend@.";
          exit 2
        end;
        Sim_check.Fuzz.replay_backend ~backend:b path
      | Some _ | None -> Sim_check.Fuzz.replay ?fault path
    in
    match result with
    | Error msg ->
      Format.eprintf "replay: %s@." msg;
      exit 2
    | Ok (scenario, outcome) ->
      Format.printf "scenario: %s@." (Sim_check.Scenario.describe scenario);
      Format.printf "outcome: %s@." (Sim_check.Fuzz.outcome_to_string outcome);
      (match outcome with Pass -> () | _ -> exit 1)
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ file_arg $ fault_arg $ backend_arg)

let compare_cmd =
  let doc =
    "Run one shared-bottleneck spec on several backends and print each \
     backend's per-flow goodput side by side (the one-off version of the \
     $(b,fluidgrid) experiment)."
  in
  let backends_arg =
    let doc =
      "Backend to include (repeatable; default: every backend that \
       supports all requested CCAs)."
    in
    Arg.(value & opt_all backend_conv [] & info [ "backend" ] ~docv:"NAME" ~doc)
  in
  let ccas_arg =
    let doc = "A flow's CCA, by registry name (repeatable)." in
    Arg.(value & opt_all string [ "cubic"; "bbr" ] & info [ "cca" ] ~docv:"CCA" ~doc)
  in
  let mbps_arg =
    Arg.(value & opt float 100.0 & info [ "mbps" ] ~docv:"MBPS" ~doc:"Link capacity.")
  in
  let rtt_arg =
    Arg.(value & opt float 40.0 & info [ "rtt" ] ~docv:"MS" ~doc:"Base RTT in ms.")
  in
  let buffer_arg =
    Arg.(value & opt float 10.0 & info [ "buffer" ] ~docv:"BDP" ~doc:"Buffer in BDP.")
  in
  let duration_arg =
    Arg.(value & opt float 30.0 & info [ "duration" ] ~docv:"S" ~doc:"Horizon in seconds.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed (stochastic backends).")
  in
  let run backends ccas mbps rtt_ms buffer_bdp duration_s seed =
    let module U = Sim_engine.Units in
    let rate_bps = U.mbps mbps in
    let rtt = U.ms rtt_ms in
    let spec =
      Sim_backend.spec ~seed ~rate_bps
        ~buffer_bytes:(U.scale buffer_bdp (U.bdp_bytes ~rate_bps ~rtt))
        ~duration:(U.seconds duration_s)
        ~warmup:(U.seconds (duration_s /. 3.0))
        (List.map (fun cca -> { Sim_backend.cca; rtt }) ccas)
    in
    let backends =
      match backends with
      | [] ->
        List.filter
          (fun b -> List.for_all (Sim_backend.supports b) ccas)
          Sim_backend.all
      | bs -> bs
    in
    if backends = [] then begin
      Format.eprintf "compare: no backend supports all of: %s@."
        (String.concat ", " ccas);
      exit 2
    end;
    Format.printf "spec: %.1f Mbps, %.1f ms, %.1f BDP buffer, %.1f s, flows=%s@."
      mbps rtt_ms buffer_bdp duration_s (String.concat "," ccas);
    let failed = ref false in
    List.iter
      (fun b ->
        (* Through the batched entry point (a batch of one is exactly
           [run]): compare doubles as an end-to-end smoke of the path
           the grid drivers dispatch on. *)
        match (Sim_backend.run_batch b [| spec |]).(0) with
        | Error e ->
          failed := true;
          Format.printf "%-8s %a@." (Sim_backend.name b) Sim_backend.pp_error e
        | Ok o ->
          let shares =
            Array.to_list
              (Array.map2
                 (fun cca bps ->
                   Printf.sprintf "%s=%.2f" cca (U.bps_to_mbps (U.bps bps)))
                 o.Sim_backend.per_flow_cca o.Sim_backend.per_flow_bps)
          in
          Format.printf
            "%-8s %s Mbps  util=%.3f queue=%.0fB qdelay=%.1fms losses=%d@."
            (Sim_backend.name b)
            (String.concat " " shares)
            o.Sim_backend.utilization o.Sim_backend.mean_queue_bytes
            (1e3 *. o.Sim_backend.mean_queuing_delay)
            o.Sim_backend.loss_events)
      backends;
    if !failed then exit 1
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      const run $ backends_arg $ ccas_arg $ mbps_arg $ rtt_arg $ buffer_arg
      $ duration_arg $ seed_arg)

let evolve_cmd =
  let doc =
    "Evolve population-scale CCA adoption (replicator / best-response / \
     logit dynamics over RTT classes, simulator-measured payoffs) and \
     print the adoption-trajectory table."
  in
  let dynamics_conv =
    let parse s =
      match Ccgame.Evolve.dynamics_of_string s with
      | Ok d -> Ok d
      | Error msg -> Error (`Msg msg)
    in
    Arg.conv
      (parse, fun ppf d -> Fmt.string ppf (Ccgame.Evolve.dynamics_name d))
  in
  let dynamics_arg =
    let doc =
      "Dynamics to evolve (repeatable): $(b,replicator), \
       $(b,best-response), $(b,logit) or $(b,logit:TAU). Default: all \
       three."
    in
    Arg.(value & opt_all dynamics_conv [] & info [ "dynamics" ] ~docv:"DYN" ~doc)
  in
  let evolve_backend_arg =
    let doc =
      "Payoff backend: $(b,fluid) (default), $(b,ode) or $(b,packet) \
       (packet disables the spot checks — it is what they check against)."
    in
    Arg.(
      value
      & opt backend_conv Sim_backend.fluid
      & info [ "backend" ] ~docv:"NAME" ~doc)
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Seed for initial shares and simulations.")
  in
  let generations_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "generations" ] ~docv:"N"
          ~doc:"Generation cap (default: 60 quick / 150 full).")
  in
  let spot_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "spot-checks" ] ~docv:"N"
          ~doc:
            "Packet-level sign checks per trajectory; 0 disables (default: \
             1 quick / 2 full).")
  in
  let run full out jobs batch cache_dir dynamics backend seed max_generations
      spot_checks =
    let ctx = ctx_of ~full ~jobs ~batch ~cache_dir ~trace_dir:None in
    let dynamics = if dynamics = [] then None else Some dynamics in
    let entry =
      {
        Experiments.Catalog.id = "evolve";
        summary = "Population-scale CCA adoption dynamics";
        run =
          Experiments.Adoption.run_with ?dynamics ~backend ~seed
            ?max_generations ?spot_checks;
      }
    in
    run_entry ~out entry ctx
  in
  Cmd.v (Cmd.info "evolve" ~doc)
    Term.(
      const run $ full_arg $ out_arg $ jobs_arg $ batch_arg $ cache_arg
      $ dynamics_arg $ evolve_backend_arg $ seed_arg $ generations_arg
      $ spot_arg)

let main_cmd =
  let doc =
    "Reproduce the experiments of 'Are we heading towards a BBR-dominant \
     Internet?' (IMC 2022)"
  in
  Cmd.group (Cmd.info "repro" ~version:"1.0.0" ~doc)
    [
      list_cmd; run_cmd; all_cmd; model_cmd; compare_cmd; evolve_cmd;
      fuzz_cmd; replay_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
