(* Command-line driver: regenerate any of the paper's tables/figures.

   Usage:
     repro list
     repro run fig03 [--full] [--jobs 4] [--cache DIR] [--out results/]
     repro all [--full] [--jobs 4] [--cache DIR] [--out results/]
*)

let ctx_of ~full ~jobs ~cache_dir =
  Experiments.Common.ctx ~jobs ?cache_dir
    (if full then Experiments.Common.Full else Experiments.Common.Quick)

(* Per-entry work accounting comes from the process-wide Exec counters:
   snapshot around the run and report the delta, so a cached re-run
   visibly says "0 simulated". *)
let run_entry ~out entry ctx =
  (* Wall-clock on purpose: reports how long the driver took, not model time. *)
  let t0 = Unix.gettimeofday () in (* simlint: allow R1 *)
  let before = Sim_engine.Exec.counters () in
  let table = entry.Experiments.Catalog.run ctx in
  let after = Sim_engine.Exec.counters () in
  Experiments.Common.print_table Format.std_formatter table;
  (match out with
  | Some dir ->
    let path = Experiments.Common.write_csv ~dir table in
    Format.printf "wrote %s@." path
  | None -> ());
  Format.printf "(%s took %.1f s; %d simulated, %d cache hits)@.@." entry.id
    (Unix.gettimeofday () -. t0 (* simlint: allow R1 *))
    (after.jobs_executed - before.jobs_executed)
    (after.cache_hits - before.cache_hits)

open Cmdliner

let full_arg =
  let doc = "Paper-scale grids and 2-minute runs (default: quick mode)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let out_arg =
  let doc = "Also write each table as CSV into $(docv)." in
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for simulation batches (default: the machine's \
     recommended domain count)."
  in
  let positive_int =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n when n >= 1 -> Ok n
      | Ok _ -> Error (`Msg "must be >= 1")
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(
    value
    & opt positive_int (Sim_engine.Exec.domain_count ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cache_arg =
  let doc =
    "Cache simulation results in $(docv) (content-addressed by config \
     digest); re-runs with unchanged parameters replay from disk."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun e ->
        Format.printf "%-8s %s@." e.Experiments.Catalog.id e.summary)
      Experiments.Catalog.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment by id (see $(b,list))." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID")
  in
  let run id full out jobs cache_dir =
    match Experiments.Catalog.find id with
    | None ->
      Format.eprintf "unknown experiment %S; try: %s@." id
        (String.concat ", " (Experiments.Catalog.ids ()));
      exit 1
    | Some entry -> run_entry ~out entry (ctx_of ~full ~jobs ~cache_dir)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ id_arg $ full_arg $ out_arg $ jobs_arg $ cache_arg)

let model_cmd =
  let doc =
    "Print the model's predictions (two-flow split, Ware baseline, Nash \
     region) for a given network."
  in
  let mbps_arg =
    Arg.(value & opt float 100.0 & info [ "mbps" ] ~docv:"MBPS" ~doc:"Link capacity.")
  in
  let rtt_arg =
    Arg.(value & opt float 40.0 & info [ "rtt" ] ~docv:"MS" ~doc:"Base RTT in ms.")
  in
  let buffer_arg =
    Arg.(value & opt float 10.0 & info [ "buffer" ] ~docv:"BDP" ~doc:"Buffer in BDP.")
  in
  let flows_arg =
    Arg.(value & opt int 10 & info [ "flows" ] ~docv:"N" ~doc:"Total flows for the NE prediction.")
  in
  let run mbps rtt_ms buffer_bdp n =
    let params = Ccmodel.Params.of_paper_units ~mbps ~buffer_bdp ~rtt_ms in
    let s = Ccmodel.Two_flow.solve params in
    let to_mbps bps = Sim_engine.Units.bps_to_mbps (Sim_engine.Units.bps bps) in
    Format.printf "network: %a@." Ccmodel.Params.pp params;
    Format.printf "2-flow model: CUBIC %.2f Mbps, BBR %.2f Mbps (b_b = %.0f B, b_cmin = %.0f B)@."
      (to_mbps s.cubic_bandwidth_bps) (to_mbps s.bbr_bandwidth_bps)
      s.bbr_buffer_bytes s.cubic_min_buffer_bytes;
    Format.printf "predicted queuing delay: %.1f ms@."
      (1e3 *. Ccmodel.Two_flow.predicted_queuing_delay params);
    Format.printf "ware et al. baseline: BBR %.2f Mbps@."
      (to_mbps
         (Ccmodel.Ware.bbr_bandwidth_bps ~params ~n_bbr:1
            ~duration:(Sim_engine.Units.seconds 120.0)));
    let region = Ccmodel.Ne.nash_region params ~n in
    Format.printf
      "Nash region for %d flows: %.1f (synch) to %.1f (desynch) CUBIC flows@."
      n region.cubic_at_ne_sync region.cubic_at_ne_desync
  in
  Cmd.v (Cmd.info "model" ~doc)
    Term.(const run $ mbps_arg $ rtt_arg $ buffer_arg $ flows_arg)

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let run full out jobs cache_dir =
    let ctx = ctx_of ~full ~jobs ~cache_dir in
    List.iter (fun entry -> run_entry ~out entry ctx) Experiments.Catalog.all
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(const run $ full_arg $ out_arg $ jobs_arg $ cache_arg)

let main_cmd =
  let doc =
    "Reproduce the experiments of 'Are we heading towards a BBR-dominant \
     Internet?' (IMC 2022)"
  in
  Cmd.group (Cmd.info "repro" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; all_cmd; model_cmd ]

let () = exit (Cmd.eval main_cmd)
