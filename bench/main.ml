(* Benchmark harness.

   Three sections, all run by default:

   1. [figures] — regenerates every paper table/figure (quick mode), i.e.
      the same rows the paper reports. Full paper-scale grids:
      `dune exec bin/repro.exe -- all --full`.
   2. [micro] — one Bechamel Test.make per table/figure benchmarking that
      figure's computational kernel, plus core-substrate kernels.
   3. [ablations] — the design-choice experiments called out in DESIGN.md:
      BBR's 2xBDP in-flight cap, CUBIC's TCP-friendly region, and the fluid
      simulator's CUBIC synchronization modes.

   Set REPRO_BENCH_SECTIONS to a comma-separated subset (e.g. "micro") to
   run less.

   Machine-readable output: `--json DIR` (or REPRO_BENCH_JSON=DIR) writes
   each Bechamel-measured section as DIR/BENCH_<section>.json mapping test
   name -> { ns_per_run; minor_words_per_run }, so the perf trajectory can
   be tracked across PRs (format documented in DESIGN.md "Event core").
   `--smoke` (or REPRO_BENCH_SMOKE=1) shrinks the measurement quota so CI
   can run the micro section quickly; smoke numbers are noisy and only
   meant to prove the harness runs and to archive a rough trajectory. *)

open Bechamel
open Toolkit

let params_10bdp =
  Ccmodel.Params.of_paper_units ~mbps:50.0 ~buffer_bdp:10.0 ~rtt_ms:40.0

let buffer_grid = [ 1.0; 2.0; 5.0; 10.0; 20.0; 50.0 ]

(* A small packet-level simulation used as the unit kernel for the
   simulation-driven figures: 4 flows, 4 simulated seconds. *)
let short_sim_config ?(seed = 1) ~other () =
  let rate_bps = Sim_engine.Units.mbps 20.0 in
  let rtt = Sim_engine.Units.ms 20.0 in
  Tcpflow.Experiment.config
    ~warmup:(Sim_engine.Units.seconds 1.0)
    ~seed ~rate_bps
    ~buffer_bytes:(Tcpflow.Experiment.buffer_bytes_of_bdp ~rate_bps ~rtt ~bdp:3.0)
    ~duration:(Sim_engine.Units.seconds 4.0)
    [
      Tcpflow.Experiment.flow_config ~base_rtt:rtt "cubic";
      Tcpflow.Experiment.flow_config ~base_rtt:rtt "cubic";
      Tcpflow.Experiment.flow_config ~base_rtt:rtt other;
      Tcpflow.Experiment.flow_config ~base_rtt:rtt other;
    ]

let short_sim ~other () =
  ignore (Tcpflow.Experiment.run (short_sim_config ~other ()))

let short_fluid ~kind () =
  let rtt = Sim_engine.Units.ms 40.0 in
  let capacity_bps = Sim_engine.Units.mbps 100.0 in
  let config =
    {
      Fluidsim.Fluid_sim.default_config with
      capacity_bps;
      buffer_bytes =
        Sim_engine.Units.scale 5.0
          (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt);
      flows =
        List.init 10 (fun i ->
            {
              Fluidsim.Fluid_sim.kind =
                (if i < 5 then Fluidsim.Fluid_sim.Cubic else kind);
              rtt;
            });
      duration = Sim_engine.Units.seconds 10.0;
      warmup = Sim_engine.Units.seconds 2.0;
    }
  in
  ignore (Fluidsim.Fluid_sim.run config)

(* Substrate kernels, named so the allocation gates below can reuse the
   exact workloads the micro section measures. *)
let event_queue_1k () =
  let q = Sim_engine.Event_queue.create () in
  for i = 0 to 999 do
    ignore
      (Sim_engine.Event_queue.add q
         ~time:(float_of_int ((i * 7919) mod 1000))
         ignore)
  done;
  while Option.is_some (Sim_engine.Event_queue.pop q) do
    ()
  done

let windowed_max_filter () =
  let f = Cca.Windowed_filter.Max_rounds.create ~window:10 in
  for round = 0 to 999 do
    Cca.Windowed_filter.Max_rounds.update f ~round (float_of_int (round mod 97));
    ignore (Cca.Windowed_filter.Max_rounds.get f)
  done

let droptail_queue_1k () =
  let q = Netsim.Droptail_queue.create ~capacity_bytes:1_500_000 () in
  for seq = 0 to 999 do
    ignore
      (Netsim.Droptail_queue.enqueue q
         (Netsim.Packet.make ~flow:(seq mod 8) ~seq ~size:1500
            ~retransmit:false ~sent_time:0.0 ~delivered:0.0
            ~delivered_time:0.0 ~app_limited:false))
  done;
  while Option.is_some (Netsim.Droptail_queue.dequeue q) do
    ()
  done

(* One Test.make per paper artifact: the figure's computational kernel. *)
let figure_tests =
  [
    Test.make ~name:"table1/notation"
      (Staged.stage (fun () ->
           ignore (Format.asprintf "%a" Ccmodel.Notation.pp_table ())));
    Test.make ~name:"fig01/ware-model-sweep"
      (Staged.stage (fun () ->
           List.iter
             (fun bdp ->
               let params =
                 Ccmodel.Params.of_paper_units ~mbps:50.0 ~buffer_bdp:bdp
                   ~rtt_ms:40.0
               in
               ignore
                 (Ccmodel.Ware.bbr_fraction ~params ~n_bbr:1
                    ~duration:(Sim_engine.Units.seconds 120.0)))
             buffer_grid));
    Test.make ~name:"fig03/two-flow-solve-sweep"
      (Staged.stage (fun () ->
           List.iter
             (fun bdp ->
               let params =
                 Ccmodel.Params.of_paper_units ~mbps:50.0 ~buffer_bdp:bdp
                   ~rtt_ms:40.0
               in
               ignore (Ccmodel.Two_flow.solve params))
             buffer_grid));
    Test.make ~name:"fig04/multi-flow-interval"
      (Staged.stage (fun () ->
           ignore
             (Ccmodel.Multi_flow.per_flow_bbr_interval params_10bdp
                ~n_cubic:10 ~n_bbr:10)));
    Test.make ~name:"fig05/predict-all-mixes"
      (Staged.stage (fun () ->
           for k = 1 to 19 do
             ignore
               (Ccmodel.Multi_flow.predict params_10bdp ~n_cubic:(20 - k)
                  ~n_bbr:k ~sync:Ccmodel.Multi_flow.Synchronized)
           done));
    Test.make ~name:"fig06/nash-region"
      (Staged.stage (fun () ->
           ignore (Ccmodel.Ne.nash_region params_10bdp ~n:10)));
    Test.make ~name:"fig07/short-sim-vivace"
      (Staged.stage (short_sim ~other:"vivace"));
    Test.make ~name:"fig08/short-sim-bbr" (Staged.stage (short_sim ~other:"bbr"));
    Test.make ~name:"fig09/nash-region-50flows"
      (Staged.stage (fun () ->
           List.iter
             (fun bdp ->
               let params =
                 Ccmodel.Params.of_paper_units ~mbps:100.0 ~buffer_bdp:bdp
                   ~rtt_ms:40.0
               in
               ignore (Ccmodel.Ne.nash_region params ~n:50))
             buffer_grid));
    Test.make ~name:"fig10/grouped-ne-check"
      (Staged.stage (fun () ->
           let payoffs =
             {
               Ccgame.Grouped_game.u_cubic =
                 (fun ~group ~counts ->
                   10.0 /. float_of_int (1 + group + counts.(group)));
               u_bbr =
                 (fun ~group ~counts ->
                   8.0 /. float_of_int (1 + group + counts.(group)));
             }
           in
           ignore
             (Ccgame.Grouped_game.equilibria ~sizes:[| 5; 5; 5 |] payoffs)));
    Test.make ~name:"fig11/short-fluid-bbr2"
      (Staged.stage (short_fluid ~kind:Fluidsim.Fluid_sim.Bbr2));
    Test.make ~name:"fig12/ultra-deep-solve"
      (Staged.stage (fun () ->
           let params =
             Ccmodel.Params.of_paper_units ~mbps:50.0 ~buffer_bdp:250.0
               ~rtt_ms:40.0
           in
           ignore (Ccmodel.Two_flow.solve params)));
  ]

let substrate_tests =
  [
    Test.make ~name:"engine/event-queue-1k" (Staged.stage event_queue_1k);
    Test.make ~name:"engine/rng-splitmix"
      (Staged.stage (fun () ->
           let rng = Sim_engine.Rng.create 7 in
           for _ = 1 to 1000 do
             ignore (Sim_engine.Rng.float rng 1.0)
           done));
    Test.make ~name:"cca/windowed-max-filter"
      (Staged.stage windowed_max_filter);
    Test.make ~name:"netsim/droptail-queue" (Staged.stage droptail_queue_1k);
    Test.make ~name:"tcpflow/short-sim-cubic-v-bbr"
      (Staged.stage (short_sim ~other:"bbr"));
    Test.make ~name:"fluid/short-10flows"
      (Staged.stage (short_fluid ~kind:Fluidsim.Fluid_sim.Bbr));
  ]

(* The analytic-backend section: the SoA fluid kernel under its
   post-rewrite name (the baseline block in BENCH_fluid.json keeps the
   pre-rewrite numbers for the before/after pair) and the ODE model's
   2-flow competition cell. *)
let ode_2flow () =
  let rtt = Sim_engine.Units.ms 40.0 in
  let capacity_bps = Sim_engine.Units.mbps 100.0 in
  let config =
    {
      Fluidsim.Ode_model.default_config with
      capacity_bps;
      buffer_bytes =
        Sim_engine.Units.scale 10.0
          (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt);
      flows =
        [
          { Fluidsim.Fluid_sim.kind = Fluidsim.Fluid_sim.Cubic; rtt };
          { Fluidsim.Fluid_sim.kind = Fluidsim.Fluid_sim.Bbr; rtt };
        ];
      duration = Sim_engine.Units.seconds 30.0;
      warmup = Sim_engine.Units.seconds 10.0;
    }
  in
  ignore (Fluidsim.Ode_model.run config)

let fluid_tests =
  [
    Test.make ~name:"fluid/short-10flows-soa"
      (Staged.stage (short_fluid ~kind:Fluidsim.Fluid_sim.Bbr));
    Test.make ~name:"ode/2flow-competition" (Staged.stage ode_2flow);
  ]

(* --- Adoption-dynamics kernels --------------------------------------- *)

(* 1000 generations of the allocation-free step kernel over 64 classes:
   ns_per_run / 1000 is the generations/sec figure for the evolve loop's
   compute half (payoff evaluation, the simulation half, is measured by
   the backend sections above). The arrays live across generations like
   the scratch buffers in Evolve.run. *)
let evolve_steps ~dyn () =
  let n = 64 in
  let src = Array.init n (fun i -> 0.1 +. (0.8 *. float_of_int i /. 64.0)) in
  let dst = Array.make n 0.0 in
  let adv =
    Array.init n (fun i -> (float_of_int (i mod 7) /. 3.0) -. 1.0)
  in
  for _ = 1 to 1000 do
    Ccgame.Evolve.step_into dyn ~rate:0.5 ~adv ~src ~dst;
    Array.blit dst 0 src 0 n
  done

(* A full trajectory against an analytic payoff landscape (interior NE at
   s = 0.6 in every class): measures the run loop's bookkeeping around the
   kernel — residuals, state snapshots, convergence detection. *)
let evolve_trajectory () =
  let payoffs =
    {
      Ccgame.Evolve.u_cubic = (fun ~cls ~shares -> 1.0 +. (0.1 *. float_of_int cls) +. shares.(cls));
      u_bbr = (fun ~cls ~shares:_ -> 1.6 +. (0.1 *. float_of_int cls));
    }
  in
  ignore
    (Ccgame.Evolve.run Ccgame.Evolve.Replicator ~rate:0.5 ~max_generations:200
       payoffs
       ~init:(Array.make 8 0.3))

let evolve_tests =
  [
    Test.make ~name:"evolve/step-1k-replicator"
      (Staged.stage (evolve_steps ~dyn:Ccgame.Evolve.Replicator));
    Test.make ~name:"evolve/step-1k-best-response"
      (Staged.stage (evolve_steps ~dyn:Ccgame.Evolve.Best_response));
    Test.make ~name:"evolve/step-1k-logit"
      (Staged.stage (evolve_steps ~dyn:(Ccgame.Evolve.Logit 0.1)));
    Test.make ~name:"evolve/run-trajectory-8class"
      (Staged.stage evolve_trajectory);
  ]

(* --- Workload / churn kernels ---------------------------------------- *)

(* Schedule generation alone: the deterministic seed-split generator over
   the web-object mix, ~2400 transfers per run. *)
let schedule_gen () =
  ignore
    (Workload.Schedule.generate_seeded
       ~arrival:(Workload.Arrival.Poisson { rate_per_s = 40.0 })
       ~sizes:Workload.Dist.web_objects ~horizon_s:60.0 ~seed:11 ())

(* A 6 s open-loop churn run on an otherwise idle 20 Mbps dumbbell at ~40%
   offered load (~70 transfers through a handful of pooled slots): the
   lifecycle layer's whole hot path — arrival attach, slot rebind,
   completion teardown — plus the transport underneath it. *)
let churn_run () =
  let sim = Sim_engine.Sim.create ~seed:3 () in
  let rate_bps = Sim_engine.Units.mbps 20.0 in
  let net =
    Netsim.Dumbbell.create ~sim ~rate_bps ~buffer_bytes:60_000 ~flows:[] ()
  in
  let schedule =
    Workload.Schedule.generate_seeded
      ~arrival:
        (Workload.Arrival.poisson_of_load ~load:0.4
           ~rate_bps:(rate_bps :> float) ~mean_size_bytes:50_000.0)
      ~sizes:(Workload.Dist.Uniform { lo_bytes = 20_000; hi_bytes = 80_000 })
      ~horizon_s:6.0 ~seed:11 ()
  in
  let churn =
    Tcpflow.Churn.create ~net ~base_flow:0 ~cca:"cubic"
      ~base_rtt:(Sim_engine.Units.ms 20.0) ~schedule ()
  in
  Sim_engine.Sim.run ~until:8.0 sim;
  Tcpflow.Churn.teardown churn

let workload_tests =
  [
    Test.make ~name:"workload/schedule-gen-60s-web"
      (Staged.stage schedule_gen);
    Test.make ~name:"workload/churn-6s-40pct" (Staged.stage churn_run);
  ]

(* Pre-rewrite numbers for fluid/short-10flows (AoS fluid simulator,
   same kernel, same machine class) so BENCH_fluid.json carries its own
   before/after pair. *)
let fluid_baseline =
  [ ("bench fluid/short-10flows-pre-soa", 18_615_018.921, 8_673_185.907) ]

(* --- Batched evaluation (DESIGN.md §15) ------------------------------ *)

module B = Sim_backend

let sweep_spec ~buffer_bdp ccas =
  let rate_bps = Sim_engine.Units.mbps 100.0 in
  let rtt = Sim_engine.Units.ms 40.0 in
  B.spec
    ~warmup:(Sim_engine.Units.seconds 20.0)
    ~seed:1 ~rate_bps
    ~buffer_bytes:
      (Sim_engine.Units.scale buffer_bdp
         (Sim_engine.Units.bdp_bytes ~rate_bps ~rtt))
    ~duration:(Sim_engine.Units.seconds 60.0)
    (List.map (fun cca -> { B.cca; rtt }) ccas)

(* A fluidgrid-sized sweep — the single-CCA diagonals plus the
   competition cells a `repro fluidgrid` evaluation visits — used as the
   unit of work for the batched-vs-sequential throughput pair. *)
let sweep_specs =
  [|
    sweep_spec ~buffer_bdp:1.0 [ "cubic" ];
    sweep_spec ~buffer_bdp:1.0 [ "bbr" ];
    sweep_spec ~buffer_bdp:1.0 [ "bbr2" ];
    sweep_spec ~buffer_bdp:1.0 [ "cubic"; "bbr" ];
    sweep_spec ~buffer_bdp:2.0 [ "cubic"; "bbr" ];
    sweep_spec ~buffer_bdp:10.0 [ "cubic"; "bbr" ];
    sweep_spec ~buffer_bdp:25.0 [ "cubic"; "bbr" ];
    sweep_spec ~buffer_bdp:0.5 [ "cubic"; "bbr2" ];
    sweep_spec ~buffer_bdp:1.0 [ "cubic"; "bbr2" ];
    sweep_spec ~buffer_bdp:10.0 [ "cubic"; "cubic" ];
    sweep_spec ~buffer_bdp:10.0 [ "bbr"; "bbr" ];
  |]

let run_batch_sweep backend () = ignore (B.run_batch_exn backend sweep_specs)

let run_seq_sweep backend () =
  Array.iter (fun s -> ignore (B.run_exn backend s)) sweep_specs

(* Pre-rewrite sequential throughput on the same 11-cell sweep (AoS fluid
   stepper / per-run-arena ODE integrator, same machine class): the
   "before" half of BENCH_batch.json's before/after pair. *)
let batch_baseline = [ ("fluid", 434.5); ("ode", 660.1) ]

(* --- Allocation gates ------------------------------------------------- *)

(* Committed minor-words-per-run ceilings for the allocation-sensitive
   kernels, set from the checked-in BENCH_micro.json / BENCH_fluid.json
   numbers plus ~10% headroom. Unlike run times, allocation counts are
   deterministic, so the gate holds on noisy CI runners: a breach means a
   new per-operation allocation reached a hot path (the A1 pass in
   tool/simlint sees the construct; this sees the total). Raising a
   ceiling is a reviewed decision, like re-blessing a golden CSV. *)
let alloc_gates =
  [
    ("engine/event-queue-1k", 50, 13_400.0, event_queue_1k);
    ("cca/windowed-max-filter", 50, 9_100.0, windowed_max_filter);
    ("netsim/droptail-queue", 50, 12_800.0, droptail_queue_1k);
    ("fig08/short-sim-bbr", 3, 880_000.0, short_sim ~other:"bbr");
    ("fig07/short-sim-vivace", 3, 935_000.0, short_sim ~other:"vivace");
    ( "fluid/short-10flows-soa", 3, 5_000.0,
      short_fluid ~kind:Fluidsim.Fluid_sim.Bbr );
    ("ode/2flow-competition", 3, 70_000.0, ode_2flow);
    (* The batched fluid stepper advances a whole sweep through one SoA
       arena with an allocation-free step loop: the budget covers arena
       construction plus per-spec result records — anything larger means
       an allocation crept inside the step loop. The ODE sweep's budget
       is dominated by its per-sample accounting buffers, which scale
       with the 60 s horizon, not with stepping. *)
    ("batch/fluid-11cell-sweep", 3, 16_000.0, run_batch_sweep B.fluid);
    ("batch/ode-11cell-sweep", 3, 2_500_000.0, run_batch_sweep B.ode);
    (* The step kernel itself is allocation-free; the budget covers the
       three 64-slot scratch arrays the harness sets up per run. *)
    ( "evolve/step-1k-logit", 50, 1_000.0,
      evolve_steps ~dyn:(Ccgame.Evolve.Logit 0.1) );
    (* Steady-state churn reuses slots, so the budget is per-run setup
       (sim + dumbbell + schedule) plus per-tenant CC state — it must not
       scale with segments sent. A breach means the rebind/ACK path
       started allocating per packet. *)
    ("workload/churn-6s-40pct", 3, 310_000.0, churn_run);
  ]

let run_alloc_gates () =
  Printf.printf "==== Allocation gates (Gc.minor_words per run) ====\n";
  Printf.printf "%-28s %14s %14s  %s\n" "kernel" "words/run" "ceiling" "status";
  let failures = ref 0 in
  List.iter
    (fun (name, iters, ceiling, f) ->
      (* One warm-up run so pool/array growth and registry setup don't
         count against the steady-state budget. *)
      f ();
      let before = Gc.minor_words () in
      for _ = 1 to iters do
        f ()
      done;
      let words = (Gc.minor_words () -. before) /. float_of_int iters in
      let ok = words <= ceiling in
      if not ok then incr failures;
      Printf.printf "%-28s %14.1f %14.1f  %s\n%!" name words ceiling
        (if ok then "ok" else "FAIL"))
    alloc_gates;
  if !failures > 0 then begin
    Printf.printf
      "alloc-gate: %d kernel(s) over budget — a new allocation reached a hot \
       path, or the ceiling in bench/main.ml needs a reviewed bump\n"
      !failures;
    exit 1
  end;
  Printf.printf "alloc-gate: OK (%d kernels)\n" (List.length alloc_gates)

(* --- CLI / env configuration ----------------------------------------- *)

let smoke =
  ref
    (match Sys.getenv_opt "REPRO_BENCH_SMOKE" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)

let json_dir = ref (Sys.getenv_opt "REPRO_BENCH_JSON")
let alloc_gate = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--json" :: dir :: rest ->
      json_dir := Some dir;
      parse rest
    | "--alloc-gate" :: rest ->
      alloc_gate := true;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "bench: unknown argument %s (expected --smoke, --json DIR, \
         --alloc-gate)\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

(* `--alloc-gate` replaces the benchmark sections entirely: run the gates,
   set the exit status, done — that is the make-check/CI entry point. *)
let () =
  if !alloc_gate then begin
    run_alloc_gates ();
    exit 0
  end

(* --- Batch section ---------------------------------------------------- *)

(* One sweep takes tens of ms — too coarse for bechamel's per-run OLS —
   and wall-clock on this machine class is noisy (±30% run-to-run), so
   the batch section times whole sweeps and keeps the best of N. *)
let sweep_rate f =
  let reps = if !smoke then 2 else 7 in
  f ();
  (* warm-up *)
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in (* simlint: allow R1 *)
    f ();
    let dt = Unix.gettimeofday () -. t0 in (* simlint: allow R1 *)
    if dt < !best then best := dt
  done;
  float_of_int (Array.length sweep_specs) /. !best

let write_batch_json ~dir rows =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir "BENCH_batch.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"section\": \"batch\",\n  \"smoke\": %b,\n" !smoke;
  Printf.fprintf oc
    "  \"units\": { \"specs_per_second\": \"sweep specs evaluated per \
     wall-clock second, best of N\" },\n";
  Printf.fprintf oc "  \"sweep_cells\": %d,\n" (Array.length sweep_specs);
  Printf.fprintf oc "  \"baseline_pre_rewrite\": {\n";
  let n = List.length batch_baseline in
  List.iteri
    (fun i (name, rate) ->
      Printf.fprintf oc
        "    \"%s\": { \"sequential_specs_per_second\": %.1f }%s\n" name rate
        (if i = n - 1 then "" else ","))
    batch_baseline;
  Printf.fprintf oc "  },\n  \"results\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, seq, batched) ->
      let baseline = List.assoc name batch_baseline in
      Printf.fprintf oc
        "    \"%s\": { \"sequential_specs_per_second\": %.1f, \
         \"batched_specs_per_second\": %.1f, \
         \"speedup_batched_vs_sequential\": %.2f, \
         \"speedup_batched_vs_baseline\": %.2f }%s\n"
        name seq batched (batched /. seq) (batched /. baseline)
        (if i = n - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let run_batch_section () =
  Printf.printf "%-8s %16s %16s %9s %14s\n" "backend" "seq specs/s"
    "batch specs/s" "speedup" "vs pre-rewrite";
  let rows =
    List.map
      (fun (name, backend) ->
        let seq = sweep_rate (run_seq_sweep backend) in
        let batched = sweep_rate (run_batch_sweep backend) in
        Printf.printf "%-8s %16.1f %16.1f %8.2fx %13.2fx\n%!" name seq batched
          (batched /. seq)
          (batched /. List.assoc name batch_baseline);
        (name, seq, batched))
      [ ("fluid", B.fluid); ("ode", B.ode) ]
  in
  match !json_dir with
  | None -> ()
  | Some dir -> write_batch_json ~dir rows

(* --- Bechamel sections ------------------------------------------------ *)

let estimate_of ols =
  match Analyze.OLS.estimates ols with Some [ est ] -> est | _ -> nan

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Number formatting for JSON: finite floats only (nan/inf are not JSON). *)
let json_float v = if Float.is_finite v then Printf.sprintf "%.3f" v else "null"

(* DIR/BENCH_<section>.json: { "results": { name: { ns_per_run;
   minor_words_per_run } } }, keys sorted so the file is diffable.
   [baseline] adds a "baseline_pre_rewrite" object in the same row format
   for sections that track a before/after pair. *)
let write_bench_json ?(baseline = []) ~dir ~section rows =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" section) in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"section\": \"%s\",\n  \"smoke\": %b,\n"
    (json_escape section) !smoke;
  Printf.fprintf oc
    "  \"units\": { \"ns_per_run\": \"nanoseconds\", \
     \"minor_words_per_run\": \"minor-heap words\" },\n";
  let print_rows rows =
    let n = List.length rows in
    List.iteri
      (fun i (name, ns, words) ->
        Printf.fprintf oc
          "    \"%s\": { \"ns_per_run\": %s, \"minor_words_per_run\": %s }%s\n"
          (json_escape name) (json_float ns) (json_float words)
          (if i = n - 1 then "" else ","))
      rows
  in
  if baseline <> [] then begin
    Printf.fprintf oc "  \"baseline_pre_rewrite\": {\n";
    print_rows baseline;
    Printf.fprintf oc "  },\n"
  end;
  Printf.fprintf oc "  \"results\": {\n";
  print_rows rows;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let run_bechamel ?(baseline = []) ~section tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg =
    if !smoke then
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.1) ~stabilize:false
        ~compaction:false ()
    else
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false
        ~compaction:false ()
  in
  let test = Test.make_grouped ~name:"bench" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances test in
  let nanos = Analyze.all ols Instance.monotonic_clock raw in
  let words = Analyze.all ols Instance.minor_allocated raw in
  let rows =
    (* Hash order is harmless: rows are sorted by name before printing. *)
    (* simlint: allow R1 *)
    Hashtbl.fold
      (fun name ols acc ->
        let minor =
          match Hashtbl.find_opt words name with
          | Some w -> estimate_of w
          | None -> nan
        in
        (name, estimate_of ols, minor) :: acc)
      nanos []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns, minor) ->
      if ns >= 1e6 then
        Printf.printf "%-45s %12.3f ms/run %14.0f w/run\n%!" name (ns /. 1e6)
          minor
      else Printf.printf "%-45s %12.1f ns/run %14.0f w/run\n%!" name ns minor)
    rows;
  match !json_dir with
  | None -> ()
  | Some dir -> write_bench_json ~baseline ~dir ~section rows

(* --- Ablations ------------------------------------------------------- *)

let mbps_of bps = Sim_engine.Units.bps_to_mbps (Sim_engine.Units.bps bps)

(* DESIGN.md ablation: BBR's in-flight cap (ProbeBW cwnd gain). The paper's
   model assumes 2xBDP; its §5 discusses that reality sits between 1x and
   2x. *)
let ablation_bbr_cap () =
  Printf.printf "\n-- ablation: BBR ProbeBW cwnd gain (in-flight cap) --\n";
  Printf.printf "%6s %14s %14s\n" "gain" "bbr(Mbps)" "cubic(Mbps)";
  List.iter
    (fun gain ->
      Cca.Registry.register "bbr-cap" (fun ~mss ~rng ->
          Cca.Bbr.make
            ~params:{ Cca.Bbr.default_params with probe_bw_cwnd_gain = gain }
            ~mss ~rng ());
      let summary =
        Experiments.Runs.mix ~ctx:Experiments.Common.quick ~mbps:50.0
          ~rtt_ms:40.0 ~buffer_bdp:8.0 ~n_cubic:1 ~other:"bbr-cap" ~n_other:1
          ()
      in
      Printf.printf "%6.2f %14.2f %14.2f\n%!" gain
        (mbps_of summary.per_flow_other_bps)
        (mbps_of summary.per_flow_cubic_bps))
    [ 1.0; 1.5; 2.0; 3.0 ]

(* CUBIC's TCP-friendly (Reno-tracking) region, competing against BBR. *)
let ablation_tcp_friendly () =
  Printf.printf "\n-- ablation: CUBIC TCP-friendly region (vs BBR, 3 BDP) --\n";
  Printf.printf "%6s %14s %14s\n" "on" "cubic(Mbps)" "bbr(Mbps)";
  List.iter
    (fun tcp_friendly ->
      Cca.Registry.register "cubic-tf" (fun ~mss ~rng:_ ->
          Cca.Cubic.make
            ~params:{ Cca.Cubic.default_params with tcp_friendly }
            ~mss ());
      let rate_bps = Sim_engine.Units.mbps 50.0 in
      let result =
        Tcpflow.Experiment.run
          (Tcpflow.Experiment.config
             ~warmup:(Sim_engine.Units.seconds 10.0)
             ~rate_bps
             ~buffer_bytes:
               (Tcpflow.Experiment.buffer_bytes_of_bdp ~rate_bps
                  ~rtt:(Sim_engine.Units.ms 40.0) ~bdp:3.0)
             ~duration:(Sim_engine.Units.seconds 40.0)
             [
               Tcpflow.Experiment.flow_config
                 ~base_rtt:(Sim_engine.Units.ms 40.0) "cubic-tf";
               Tcpflow.Experiment.flow_config
                 ~base_rtt:(Sim_engine.Units.ms 40.0) "bbr";
             ])
      in
      Printf.printf "%6b %14.2f %14.2f\n%!" tcp_friendly
        (mbps_of (Tcpflow.Experiment.mean_throughput_of_cca result "cubic-tf"))
        (mbps_of (Tcpflow.Experiment.mean_throughput_of_cca result "bbr")))
    [ true; false ]

(* DESIGN.md ablation: fluid-simulator CUBIC synchronization mode. *)
let ablation_fluid_sync () =
  Printf.printf
    "\n-- ablation: fluid CUBIC synchronization mode (5v5, 10 BDP) --\n";
  Printf.printf "%-14s %14s %14s\n" "mode" "bbr(Mbps)" "cubic(Mbps)";
  let rtt = Sim_engine.Units.ms 40.0 in
  let capacity_bps = Sim_engine.Units.mbps 100.0 in
  List.iter
    (fun (name, sync) ->
      let config =
        {
          Fluidsim.Fluid_sim.default_config with
          capacity_bps;
          buffer_bytes =
            Sim_engine.Units.scale 10.0
              (Sim_engine.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt);
          flows =
            List.init 10 (fun i ->
                {
                  Fluidsim.Fluid_sim.kind =
                    (if i < 5 then Fluidsim.Fluid_sim.Cubic
                     else Fluidsim.Fluid_sim.Bbr);
                  rtt;
                });
          sync;
          duration = Sim_engine.Units.seconds 60.0;
          warmup = Sim_engine.Units.seconds 20.0;
        }
      in
      let result = Fluidsim.Fluid_sim.run config in
      Printf.printf "%-14s %14.2f %14.2f\n%!" name
        (mbps_of
           (Fluidsim.Fluid_sim.mean_bps_of_kind result Fluidsim.Fluid_sim.Bbr))
        (mbps_of
           (Fluidsim.Fluid_sim.mean_bps_of_kind result
              Fluidsim.Fluid_sim.Cubic)))
    [
      ("synchronized", Fluidsim.Fluid_sim.Synchronized);
      ("desynchronized", Fluidsim.Fluid_sim.Desynchronized);
      ("stochastic-0.5", Fluidsim.Fluid_sim.Stochastic 0.5);
    ]

(* --- Jobs scaling --------------------------------------------------- *)

(* Wall-clock of one fixed batch of independent simulations under growing
   worker counts: the speedup the figure drivers get from `--jobs`. *)
let scaling_jobs () =
  let n_sims = 16 in
  let configs =
    List.init n_sims (fun i ->
        short_sim_config ~seed:(i + 1)
          ~other:(if i mod 2 = 0 then "bbr" else "cubic")
          ())
  in
  Printf.printf "\n-- jobs scaling: %d independent 4 s simulations --\n" n_sims;
  Printf.printf "%6s %12s %10s\n" "jobs" "wall(s)" "speedup";
  let time jobs =
    (* Wall-clock on purpose: this measures the harness, not the model. *)
    let t0 = Unix.gettimeofday () in (* simlint: allow R1 *)
    ignore (Sim_engine.Exec.map_list ~jobs Tcpflow.Experiment.run configs);
    Unix.gettimeofday () -. t0 (* simlint: allow R1 *)
  in
  let job_counts =
    List.sort_uniq compare [ 1; 2; 4; Sim_engine.Exec.domain_count () ]
  in
  let base = ref nan in
  List.iter
    (fun jobs ->
      let dt = time jobs in
      if Float.is_nan !base then base := dt;
      Printf.printf "%6d %12.2f %9.2fx\n%!" jobs dt (!base /. dt))
    job_counts

let sections () =
  match Sys.getenv_opt "REPRO_BENCH_SECTIONS" with
  | None | Some "" ->
    [ "figures"; "micro"; "fluid"; "batch"; "evolve"; "workload"; "scaling";
      "ablations" ]
  | Some s -> String.split_on_char ',' s

let () =
  let sections = sections () in
  let t0 = Unix.gettimeofday () in (* simlint: allow R1 *)
  if List.mem "figures" sections then begin
    Printf.printf "==== Paper tables & figures (quick mode) ====\n\n%!";
    List.iter
      (fun entry ->
        let table = entry.Experiments.Catalog.run Experiments.Common.quick in
        Experiments.Common.print_table Format.std_formatter table)
      Experiments.Catalog.all
  end;
  if List.mem "micro" sections then begin
    Printf.printf "==== Bechamel micro-benchmarks ====\n%!";
    run_bechamel ~section:"micro" (figure_tests @ substrate_tests)
  end;
  if List.mem "fluid" sections then begin
    Printf.printf "==== Analytic-backend benchmarks ====\n%!";
    run_bechamel ~baseline:fluid_baseline ~section:"fluid" fluid_tests
  end;
  if List.mem "batch" sections then begin
    Printf.printf "==== Batched evaluation (11-cell sweep) ====\n%!";
    run_batch_section ()
  end;
  if List.mem "evolve" sections then begin
    Printf.printf "==== Adoption-dynamics benchmarks ====\n%!";
    run_bechamel ~section:"evolve" evolve_tests
  end;
  if List.mem "workload" sections then begin
    Printf.printf "==== Workload / churn benchmarks ====\n%!";
    run_bechamel ~section:"workload" workload_tests
  end;
  if List.mem "scaling" sections then begin
    Printf.printf "\n==== Parallel executor scaling ====\n%!";
    scaling_jobs ()
  end;
  if List.mem "ablations" sections then begin
    Printf.printf "\n==== Ablations ====\n%!";
    ablation_bbr_cap ();
    ablation_tcp_friendly ();
    ablation_fluid_sync ()
  end;
  Printf.printf "\ntotal bench time: %.1f s\n"
    (Unix.gettimeofday () -. t0 (* simlint: allow R1 *))
